//! The static metric registry and the per-worker [`MetricSet`].
//!
//! Metrics are declared once, at compile time, as `const` definition
//! tables; a [`MetricSet`] is just three flat arrays indexed by the
//! typed ids those tables hand out. Recording is an array index plus
//! an integer add — no locking, no hashing, no allocation — so a set
//! can live inside each fleet worker's hot loop.
//!
//! Every value is an integer (`u64`): latencies are recorded in
//! microseconds and overhead ratios in milli-units (×1000). Integer
//! addition commutes, so merging per-worker sets in worker-id order
//! yields bit-identical aggregates no matter which worker claimed
//! which flow chunk — the same schedule-independence argument the
//! fleet digest relies on.

use crate::trace::Rung;

/// Definition of one monotonically increasing counter.
#[derive(Clone, Copy, Debug)]
pub struct CounterDef {
    /// Stable snake_case metric name (`citymesh_` prefix implied by
    /// exporters).
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
}

/// Definition of one gauge. Fleet gauges are high-water marks and
/// merge by `max`.
#[derive(Clone, Copy, Debug)]
pub struct GaugeDef {
    /// Stable snake_case metric name.
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
}

/// Definition of one fixed-bucket histogram over integer samples.
#[derive(Clone, Copy, Debug)]
pub struct HistogramDef {
    /// Stable snake_case metric name.
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
    /// Unit of the recorded samples (informational; exporters print it).
    pub unit: &'static str,
    /// Inclusive upper bounds of the finite buckets, ascending. An
    /// implicit overflow bucket catches everything above the last.
    pub bounds: &'static [u64],
}

/// Typed handle into [`COUNTERS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Typed handle into [`GAUGES`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(pub(crate) usize);

/// Typed handle into [`HISTOGRAMS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(pub(crate) usize);

/// Flows that entered the engine.
pub const FLOWS: CounterId = CounterId(0);
/// Flows that delivered (any rung).
pub const DELIVERED: CounterId = CounterId(1);
/// Flows that never delivered.
pub const FAILED: CounterId = CounterId(2);
/// Flows that needed more than one attempt.
pub const RETRIED: CounterId = CounterId(3);
/// Retried flows that ultimately delivered.
pub const RECOVERED: CounterId = CounterId(4);
/// Send attempts simulated, all flows.
pub const ATTEMPTS: CounterId = CounterId(5);
/// AP broadcasts, all flows and attempts.
pub const BROADCASTS: CounterId = CounterId(6);
/// Deliveries won on the first rung.
pub const RUNG_FIRST: CounterId = CounterId(7);
/// Deliveries won by a plain resend.
pub const RUNG_RESEND: CounterId = CounterId(8);
/// Deliveries won by the widened conduit.
pub const RUNG_WIDEN: CounterId = CounterId(9);
/// Deliveries won by a replanned detour.
pub const RUNG_REPLAN: CounterId = CounterId(10);
/// Flows that exhausted every ladder rung.
pub const EXHAUSTED: CounterId = CounterId(11);
/// Flows that never reached the simulator (no route / dark source).
pub const UNROUTABLE: CounterId = CounterId(12);
/// Postmortem traces captured.
pub const POSTMORTEMS: CounterId = CounterId(13);
/// Trace events evicted from full rings.
pub const TRACE_DROPPED: CounterId = CounterId(14);
/// World-churn events applied to the live fault state.
pub const EVENTS_APPLIED: CounterId = CounterId(15);
/// Cached routes evicted by churn invalidation (targeted or flush).
pub const ROUTES_EVICTED: CounterId = CounterId(16);
/// Fault-state epoch transitions (one per applied event).
pub const EPOCH_TRANSITIONS: CounterId = CounterId(17);
/// Hierarchical planner queries answered (one per cache-miss plan when
/// the hierarchical fast path is enabled).
///
/// Like the route-cache hit/miss counts, hier planner counters are
/// *schedule-dependent*: racing workers may double-plan a pair, so the
/// totals vary with worker count. They are excluded from digests.
pub const HIER_QUERIES: CounterId = CounterId(18);
/// Hier queries answered entirely inside one district (no overlay
/// search). Schedule-dependent; excluded from digests.
pub const HIER_DIRECT_ROUTES: CounterId = CounterId(19);
/// Border nodes settled by overlay Dijkstra across all hier queries.
/// Schedule-dependent; excluded from digests.
pub const HIER_OVERLAY_SETTLED: CounterId = CounterId(20);
/// Vertex expansions performed by hier intra-district searches.
/// Schedule-dependent; excluded from digests.
pub const HIER_EXPANSIONS: CounterId = CounterId(21);
/// Flows the streaming engine admitted past its bounded queues.
pub const ADMITTED: CounterId = CounterId(22);
/// Flows shed at admission because the server's queue was full.
pub const SHED_BACKPRESSURE: CounterId = CounterId(23);
/// Flows shed at admission because their queueing wait would have
/// exceeded the configured deadline.
pub const SHED_DEADLINE: CounterId = CounterId(24);
/// Served flows whose trace capture was shed by the degradation
/// ladder (queue depth past the first rung).
pub const DEGRADED_TRACING: CounterId = CounterId(25);
/// Served flows whose retry ladder was capped to a single attempt by
/// the degradation ladder (queue depth past the second rung).
pub const DEGRADED_RETRY: CounterId = CounterId(26);
/// Payloads sealed under the secure message plane (one per encrypted
/// flow). Deterministic per flow, so worker-count invariant — but like
/// every metric it stays out of report digests, which carry their own
/// conditional sealed counters.
pub const MSGS_SEALED: CounterId = CounterId(27);
/// Sealed payloads the receiver delivered, authenticated, and opened.
pub const MSGS_OPENED: CounterId = CounterId(28);
/// Per-pair session keys derived on cache misses (X25519 + HKDF — the
/// amortized cost).
///
/// Like the route-cache and hier counters this is *schedule-dependent*:
/// racing workers may both miss and double-derive a pair, so the total
/// varies with worker count. Excluded from digests.
pub const KEYS_DERIVED: CounterId = CounterId(29);
/// Receiver-side authentication failures (tampered header or
/// ciphertext). Zero outside tamper-injection runs.
pub const AUTH_FAILURES: CounterId = CounterId(30);

/// The counter registry; indexed by [`CounterId`].
pub const COUNTERS: &[CounterDef] = &[
    CounterDef {
        name: "flows_total",
        help: "Flows that entered the engine",
    },
    CounterDef {
        name: "delivered_total",
        help: "Flows that delivered on any rung",
    },
    CounterDef {
        name: "failed_total",
        help: "Flows that never delivered",
    },
    CounterDef {
        name: "retried_total",
        help: "Flows that needed more than one attempt",
    },
    CounterDef {
        name: "recovered_total",
        help: "Retried flows that ultimately delivered",
    },
    CounterDef {
        name: "attempts_total",
        help: "Send attempts simulated",
    },
    CounterDef {
        name: "broadcasts_total",
        help: "AP broadcasts across all attempts",
    },
    CounterDef {
        name: "rung_first_total",
        help: "Deliveries won on the first send",
    },
    CounterDef {
        name: "rung_resend_total",
        help: "Deliveries won by a plain resend",
    },
    CounterDef {
        name: "rung_widen_total",
        help: "Deliveries won by the widened conduit",
    },
    CounterDef {
        name: "rung_replan_total",
        help: "Deliveries won by a replanned detour",
    },
    CounterDef {
        name: "exhausted_total",
        help: "Flows that exhausted every ladder rung",
    },
    CounterDef {
        name: "unroutable_total",
        help: "Flows that never reached the simulator",
    },
    CounterDef {
        name: "postmortems_total",
        help: "Postmortem traces captured",
    },
    CounterDef {
        name: "trace_dropped_total",
        help: "Trace events evicted from full rings",
    },
    CounterDef {
        name: "churn_events_total",
        help: "World-churn events applied to the live fault state",
    },
    CounterDef {
        name: "routes_evicted_total",
        help: "Cached routes evicted by churn invalidation",
    },
    CounterDef {
        name: "epoch_transitions_total",
        help: "Fault-state epoch transitions",
    },
    CounterDef {
        name: "hier_queries_total",
        help: "Hierarchical planner queries answered",
    },
    CounterDef {
        name: "hier_direct_routes_total",
        help: "Hier queries resolved inside one district",
    },
    CounterDef {
        name: "hier_overlay_settled_total",
        help: "Border nodes settled by overlay Dijkstra",
    },
    CounterDef {
        name: "hier_expansions_total",
        help: "Vertex expansions in hier intra-district searches",
    },
    CounterDef {
        name: "stream_admitted_total",
        help: "Flows admitted past the streaming engine's bounded queues",
    },
    CounterDef {
        name: "stream_shed_backpressure_total",
        help: "Flows shed at admission: server queue full",
    },
    CounterDef {
        name: "stream_shed_deadline_total",
        help: "Flows shed at admission: queueing wait past the deadline",
    },
    CounterDef {
        name: "stream_degraded_tracing_total",
        help: "Served flows whose trace capture the ladder shed",
    },
    CounterDef {
        name: "stream_degraded_retry_total",
        help: "Served flows whose retry ladder the ladder capped",
    },
    CounterDef {
        name: "secure_msgs_sealed_total",
        help: "Payloads sealed under the secure message plane",
    },
    CounterDef {
        name: "secure_msgs_opened_total",
        help: "Sealed payloads delivered, authenticated, and opened",
    },
    CounterDef {
        name: "secure_keys_derived_total",
        help: "Per-pair session keys derived on cache misses",
    },
    CounterDef {
        name: "secure_auth_failures_total",
        help: "Receiver-side authentication failures",
    },
];

/// Highest ring occupancy any tracer reached.
pub const TRACE_HIGH_WATER: GaugeId = GaugeId(0);
/// Most attempts any single flow consumed.
pub const MAX_ATTEMPTS: GaugeId = GaugeId(1);
/// Deepest any streaming admission queue got (flows in system at an
/// arrival instant).
pub const QUEUE_DEPTH_HIGH_WATER: GaugeId = GaugeId(2);

/// The gauge registry; indexed by [`GaugeId`]. All fleet gauges are
/// high-water marks (merged by `max`).
pub const GAUGES: &[GaugeDef] = &[
    GaugeDef {
        name: "trace_ring_high_water",
        help: "Highest tracer ring occupancy reached",
    },
    GaugeDef {
        name: "max_attempts_per_flow",
        help: "Most attempts any single flow consumed",
    },
    GaugeDef {
        name: "queue_depth_high_water",
        help: "Deepest streaming admission queue reached",
    },
];

/// Latency buckets, µs. The horizon-timeout penalty adds a full
/// simulated minute per failed attempt, so the tail reaches 300 s.
const LATENCY_BOUNDS_US: &[u64] = &[
    100,
    300,
    1_000,
    3_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    30_000_000,
    60_000_000,
    120_000_000,
    300_000_000,
];

/// Overhead buckets, milli-units (1000 = one broadcast per flow).
const OVERHEAD_BOUNDS_MILLI: &[u64] = &[
    1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000, 512_000, 1_024_000,
];

/// Latency of flows delivered on the first rung, µs.
pub const LATENCY_FIRST: HistogramId = HistogramId(0);
/// Latency of flows recovered by a resend, µs.
pub const LATENCY_RESEND: HistogramId = HistogramId(1);
/// Latency of flows recovered by the widened conduit, µs.
pub const LATENCY_WIDEN: HistogramId = HistogramId(2);
/// Latency of flows recovered by a replan, µs.
pub const LATENCY_REPLAN: HistogramId = HistogramId(3);
/// Broadcast overhead of first-rung deliveries, milli-units.
pub const OVERHEAD_FIRST: HistogramId = HistogramId(4);
/// Broadcast overhead of resend recoveries, milli-units.
pub const OVERHEAD_RESEND: HistogramId = HistogramId(5);
/// Broadcast overhead of widen recoveries, milli-units.
pub const OVERHEAD_WIDEN: HistogramId = HistogramId(6);
/// Broadcast overhead of replan recoveries, milli-units.
pub const OVERHEAD_REPLAN: HistogramId = HistogramId(7);
/// Attempts each flow consumed before resolution.
pub const ATTEMPTS_PER_FLOW: HistogramId = HistogramId(8);
/// Streaming sojourn time (arrival → virtual completion) of admitted
/// flows, µs.
pub const STREAM_SOJOURN: HistogramId = HistogramId(9);
/// Streaming queueing wait (arrival → virtual service start) of
/// admitted flows, µs.
pub const STREAM_WAIT: HistogramId = HistogramId(10);
/// Queue depth (flows in system) observed at each arrival instant.
pub const QUEUE_DEPTH: HistogramId = HistogramId(11);

/// Queue-depth buckets, flows in system at an arrival.
const DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The histogram registry; indexed by [`HistogramId`].
pub const HISTOGRAMS: &[HistogramDef] = &[
    HistogramDef {
        name: "latency_first_us",
        help: "Latency of first-rung deliveries",
        unit: "us",
        bounds: LATENCY_BOUNDS_US,
    },
    HistogramDef {
        name: "latency_resend_us",
        help: "Latency of resend recoveries",
        unit: "us",
        bounds: LATENCY_BOUNDS_US,
    },
    HistogramDef {
        name: "latency_widen_us",
        help: "Latency of widen recoveries",
        unit: "us",
        bounds: LATENCY_BOUNDS_US,
    },
    HistogramDef {
        name: "latency_replan_us",
        help: "Latency of replan recoveries",
        unit: "us",
        bounds: LATENCY_BOUNDS_US,
    },
    HistogramDef {
        name: "overhead_first_milli",
        help: "Broadcast overhead of first-rung deliveries",
        unit: "milli",
        bounds: OVERHEAD_BOUNDS_MILLI,
    },
    HistogramDef {
        name: "overhead_resend_milli",
        help: "Broadcast overhead of resend recoveries",
        unit: "milli",
        bounds: OVERHEAD_BOUNDS_MILLI,
    },
    HistogramDef {
        name: "overhead_widen_milli",
        help: "Broadcast overhead of widen recoveries",
        unit: "milli",
        bounds: OVERHEAD_BOUNDS_MILLI,
    },
    HistogramDef {
        name: "overhead_replan_milli",
        help: "Broadcast overhead of replan recoveries",
        unit: "milli",
        bounds: OVERHEAD_BOUNDS_MILLI,
    },
    HistogramDef {
        name: "attempts_per_flow",
        help: "Attempts each flow consumed",
        unit: "attempts",
        bounds: &[1, 2, 3, 4],
    },
    HistogramDef {
        name: "stream_sojourn_us",
        help: "Sojourn time of admitted streaming flows",
        unit: "us",
        bounds: LATENCY_BOUNDS_US,
    },
    HistogramDef {
        name: "stream_queue_wait_us",
        help: "Queueing wait of admitted streaming flows",
        unit: "us",
        bounds: LATENCY_BOUNDS_US,
    },
    HistogramDef {
        name: "queue_depth_at_arrival",
        help: "Flows in system at each streaming arrival",
        unit: "flows",
        bounds: DEPTH_BOUNDS,
    },
];

/// The delivery counter credited to a rung.
pub fn rung_delivery_counter(rung: Rung) -> CounterId {
    match rung {
        Rung::First => RUNG_FIRST,
        Rung::Resend => RUNG_RESEND,
        Rung::Widen => RUNG_WIDEN,
        Rung::Replan => RUNG_REPLAN,
    }
}

/// The latency histogram credited to a rung.
pub fn rung_latency_histogram(rung: Rung) -> HistogramId {
    match rung {
        Rung::First => LATENCY_FIRST,
        Rung::Resend => LATENCY_RESEND,
        Rung::Widen => LATENCY_WIDEN,
        Rung::Replan => LATENCY_REPLAN,
    }
}

/// The overhead histogram credited to a rung.
pub fn rung_overhead_histogram(rung: Rung) -> HistogramId {
    match rung {
        Rung::First => OVERHEAD_FIRST,
        Rung::Resend => OVERHEAD_RESEND,
        Rung::Widen => OVERHEAD_WIDEN,
        Rung::Replan => OVERHEAD_REPLAN,
    }
}

/// State of one histogram: finite buckets plus overflow, all integer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct HistoState {
    /// `bounds.len() + 1` bucket counts (last = overflow).
    pub(crate) buckets: Vec<u64>,
    pub(crate) count: u64,
    pub(crate) sum: u64,
    pub(crate) max: u64,
}

impl HistoState {
    fn new(def: &HistogramDef) -> Self {
        HistoState {
            buckets: vec![0; def.bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// One worker's (or one merged run's) metric values, indexed by the
/// registry ids. Built once per worker; recording never allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSet {
    counters: Vec<u64>,
    gauges: Vec<u64>,
    histograms: Vec<HistoState>,
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::new()
    }
}

impl MetricSet {
    /// A zeroed set covering the whole registry.
    pub fn new() -> Self {
        MetricSet {
            counters: vec![0; COUNTERS.len()],
            gauges: vec![0; GAUGES.len()],
            histograms: HISTOGRAMS.iter().map(HistoState::new).collect(),
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Raises a high-water gauge to at least `value`.
    #[inline]
    pub fn gauge_max(&mut self, id: GaugeId, value: u64) {
        let g = &mut self.gauges[id.0];
        *g = (*g).max(value);
    }

    /// Records one sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        let def = &HISTOGRAMS[id.0];
        let h = &mut self.histograms[id.0];
        let idx = def
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(def.bounds.len());
        h.buckets[idx] += 1;
        h.count += 1;
        h.sum += value;
        h.max = h.max.max(value);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id.0]
    }

    /// Sample count of a histogram.
    pub fn histo_count(&self, id: HistogramId) -> u64 {
        self.histograms[id.0].count
    }

    /// Sample sum of a histogram (in its recorded unit).
    pub fn histo_sum(&self, id: HistogramId) -> u64 {
        self.histograms[id.0].sum
    }

    /// Largest sample a histogram has seen.
    pub fn histo_max(&self, id: HistogramId) -> u64 {
        self.histograms[id.0].max
    }

    /// Mean sample of a histogram, or `None` when empty.
    pub fn histo_mean(&self, id: HistogramId) -> Option<f64> {
        let h = &self.histograms[id.0];
        (h.count > 0).then(|| h.sum as f64 / h.count as f64)
    }

    /// Approximate quantile: the upper bound of the bucket containing
    /// the `q`-quantile sample (the recorded max for the overflow
    /// bucket). `None` when the histogram is empty.
    pub fn histo_quantile(&self, id: HistogramId, q: f64) -> Option<u64> {
        let def = &HISTOGRAMS[id.0];
        let h = &self.histograms[id.0];
        if h.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < def.bounds.len() {
                    def.bounds[i]
                } else {
                    h.max
                });
            }
        }
        Some(h.max)
    }

    /// Folds another set into this one: counters and buckets add,
    /// gauges take the max. Integer addition commutes, so merging the
    /// per-worker sets in worker-id order is deterministic regardless
    /// of which worker executed which flows.
    pub fn merge(&mut self, other: &MetricSet) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                *x += y;
            }
            a.count += b.count;
            a.sum += b.sum;
            a.max = a.max.max(b.max);
        }
    }

    /// FNV-1a digest over every counter, gauge, and histogram bucket —
    /// the telemetry analogue of the fleet report digest, pinned by
    /// determinism tests across worker counts.
    pub fn fingerprint(&self) -> u64 {
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = BASIS;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for &c in &self.counters {
            mix(c);
        }
        for &g in &self.gauges {
            mix(g);
        }
        for hist in &self.histograms {
            mix(hist.count);
            mix(hist.sum);
            mix(hist.max);
            for &b in &hist.buckets {
                mix(b);
            }
        }
        h
    }

    pub(crate) fn counters(&self) -> &[u64] {
        &self.counters
    }

    pub(crate) fn gauges(&self) -> &[u64] {
        &self.gauges
    }

    pub(crate) fn histograms(&self) -> &[HistoState] {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_line_up() {
        assert_eq!(COUNTERS.len(), 31);
        assert_eq!(COUNTERS[HIER_QUERIES.0].name, "hier_queries_total");
        assert_eq!(COUNTERS[MSGS_SEALED.0].name, "secure_msgs_sealed_total");
        assert_eq!(COUNTERS[MSGS_OPENED.0].name, "secure_msgs_opened_total");
        assert_eq!(COUNTERS[KEYS_DERIVED.0].name, "secure_keys_derived_total");
        assert_eq!(COUNTERS[AUTH_FAILURES.0].name, "secure_auth_failures_total");
        assert_eq!(COUNTERS[ADMITTED.0].name, "stream_admitted_total");
        assert_eq!(
            COUNTERS[SHED_BACKPRESSURE.0].name,
            "stream_shed_backpressure_total"
        );
        assert_eq!(COUNTERS[SHED_DEADLINE.0].name, "stream_shed_deadline_total");
        assert_eq!(
            COUNTERS[DEGRADED_TRACING.0].name,
            "stream_degraded_tracing_total"
        );
        assert_eq!(
            COUNTERS[DEGRADED_RETRY.0].name,
            "stream_degraded_retry_total"
        );
        assert_eq!(COUNTERS[HIER_EXPANSIONS.0].name, "hier_expansions_total");
        assert_eq!(COUNTERS[TRACE_DROPPED.0].name, "trace_dropped_total");
        assert_eq!(COUNTERS[EVENTS_APPLIED.0].name, "churn_events_total");
        assert_eq!(COUNTERS[ROUTES_EVICTED.0].name, "routes_evicted_total");
        assert_eq!(
            COUNTERS[EPOCH_TRANSITIONS.0].name,
            "epoch_transitions_total"
        );
        assert_eq!(GAUGES[MAX_ATTEMPTS.0].name, "max_attempts_per_flow");
        assert_eq!(
            GAUGES[QUEUE_DEPTH_HIGH_WATER.0].name,
            "queue_depth_high_water"
        );
        assert_eq!(HISTOGRAMS[ATTEMPTS_PER_FLOW.0].name, "attempts_per_flow");
        assert_eq!(HISTOGRAMS[STREAM_SOJOURN.0].name, "stream_sojourn_us");
        assert_eq!(HISTOGRAMS[STREAM_WAIT.0].name, "stream_queue_wait_us");
        assert_eq!(HISTOGRAMS[QUEUE_DEPTH.0].name, "queue_depth_at_arrival");
        for rung in Rung::ALL {
            let c = rung_delivery_counter(rung);
            assert!(COUNTERS[c.0].name.contains(rung.label()));
            let l = rung_latency_histogram(rung);
            assert!(HISTOGRAMS[l.0].name.contains(rung.label()));
            let o = rung_overhead_histogram(rung);
            assert!(HISTOGRAMS[o.0].name.contains(rung.label()));
        }
    }

    #[test]
    fn counters_and_gauges_record() {
        let mut m = MetricSet::new();
        m.inc(FLOWS);
        m.add(BROADCASTS, 41);
        m.inc(BROADCASTS);
        m.gauge_max(MAX_ATTEMPTS, 3);
        m.gauge_max(MAX_ATTEMPTS, 2);
        assert_eq!(m.counter(FLOWS), 1);
        assert_eq!(m.counter(BROADCASTS), 42);
        assert_eq!(m.gauge(MAX_ATTEMPTS), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut m = MetricSet::new();
        for v in [1u64, 2, 2, 3, 4, 9] {
            m.observe(ATTEMPTS_PER_FLOW, v);
        }
        assert_eq!(m.histo_count(ATTEMPTS_PER_FLOW), 6);
        assert_eq!(m.histo_sum(ATTEMPTS_PER_FLOW), 21);
        assert_eq!(m.histo_max(ATTEMPTS_PER_FLOW), 9);
        // p50 falls in the `<= 2` bucket; p99 falls in overflow → max.
        assert_eq!(m.histo_quantile(ATTEMPTS_PER_FLOW, 0.5), Some(2));
        assert_eq!(m.histo_quantile(ATTEMPTS_PER_FLOW, 0.99), Some(9));
        assert_eq!(m.histo_quantile(LATENCY_FIRST, 0.5), None);
    }

    #[test]
    fn merge_is_commutative_on_disjoint_workers() {
        let mut a = MetricSet::new();
        a.inc(FLOWS);
        a.observe(LATENCY_FIRST, 250);
        a.gauge_max(TRACE_HIGH_WATER, 7);
        let mut b = MetricSet::new();
        b.add(FLOWS, 2);
        b.observe(LATENCY_FIRST, 5_000);
        b.gauge_max(TRACE_HIGH_WATER, 3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        assert_eq!(ab.counter(FLOWS), 3);
        assert_eq!(ab.gauge(TRACE_HIGH_WATER), 7);
        assert_eq!(ab.histo_count(LATENCY_FIRST), 2);
    }

    #[test]
    fn fingerprint_tracks_any_change() {
        let mut m = MetricSet::new();
        let empty = m.fingerprint();
        m.inc(DELIVERED);
        let one = m.fingerprint();
        assert_ne!(empty, one);
        m.observe(OVERHEAD_WIDEN, 12_345);
        assert_ne!(one, m.fingerprint());
    }
}
