//! Snapshot exporters: JSON and Prometheus text exposition.
//!
//! Both are hand-rolled (the workspace is offline; no serde) and
//! deterministic: metrics render in registry order, so two equal
//! [`MetricSet`]s always produce byte-identical output.

use crate::metrics::{MetricSet, COUNTERS, GAUGES, HISTOGRAMS};

impl MetricSet {
    /// Renders the full set as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"counters\":{");
        for (i, (def, v)) in COUNTERS.iter().zip(self.counters()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", def.name, v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (def, v)) in GAUGES.iter().zip(self.gauges()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", def.name, v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (def, h)) in HISTOGRAMS.iter().zip(self.histograms()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"unit\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                def.name, def.unit, h.count, h.sum, h.max
            ));
            for (j, (&bound, &n)) in def
                .bounds
                .iter()
                .chain(std::iter::once(&u64::MAX))
                .zip(&h.buckets)
                .enumerate()
            {
                if j > 0 {
                    out.push(',');
                }
                if bound == u64::MAX {
                    out.push_str(&format!("{{\"le\":\"+Inf\",\"n\":{n}}}"));
                } else {
                    out.push_str(&format!("{{\"le\":\"{bound}\",\"n\":{n}}}"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the full set in the Prometheus text exposition format.
    /// Histogram buckets are cumulative with `le` labels, per the
    /// format; every metric is prefixed `citymesh_`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (def, v) in COUNTERS.iter().zip(self.counters()) {
            let name = format!("citymesh_{}", def.name);
            out.push_str(&format!("# HELP {name} {}\n", def.help));
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {v}\n"));
        }
        for (def, v) in GAUGES.iter().zip(self.gauges()) {
            let name = format!("citymesh_{}", def.name);
            out.push_str(&format!("# HELP {name} {}\n", def.help));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {v}\n"));
        }
        for (def, h) in HISTOGRAMS.iter().zip(self.histograms()) {
            let name = format!("citymesh_{}", def.name);
            out.push_str(&format!("# HELP {name} {} ({})\n", def.help, def.unit));
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (&bound, &n) in def.bounds.iter().zip(&h.buckets) {
                cumulative += n;
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{ATTEMPTS_PER_FLOW, DELIVERED, FLOWS, LATENCY_FIRST, MAX_ATTEMPTS};

    fn sample_set() -> MetricSet {
        let mut m = MetricSet::new();
        m.add(FLOWS, 10);
        m.add(DELIVERED, 9);
        m.gauge_max(MAX_ATTEMPTS, 3);
        for v in [1u64, 1, 2, 4, 9] {
            m.observe(ATTEMPTS_PER_FLOW, v);
        }
        m.observe(LATENCY_FIRST, 250);
        m
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let m = sample_set();
        let a = m.to_json();
        let b = m.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"flows_total\":10"));
        assert!(a.contains("\"max_attempts_per_flow\":3"));
        assert!(a.contains(
            "\"attempts_per_flow\":{\"unit\":\"attempts\",\"count\":5,\"sum\":17,\"max\":9"
        ));
        assert!(a.contains("{\"le\":\"+Inf\",\"n\":1}"));
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let m = sample_set();
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE citymesh_flows_total counter"));
        assert!(text.contains("citymesh_flows_total 10"));
        assert!(text.contains("# TYPE citymesh_attempts_per_flow histogram"));
        // Samples 1,1,2,4,9 → le=1:2, le=2:3, le=3:3, le=4:4, +Inf:5.
        assert!(text.contains("citymesh_attempts_per_flow_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("citymesh_attempts_per_flow_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("citymesh_attempts_per_flow_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("citymesh_attempts_per_flow_bucket{le=\"4\"} 4\n"));
        assert!(text.contains("citymesh_attempts_per_flow_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("citymesh_attempts_per_flow_sum 17\n"));
        assert!(text.contains("citymesh_attempts_per_flow_count 5\n"));
    }

    #[test]
    fn empty_set_renders_cleanly() {
        let m = MetricSet::new();
        assert!(m.to_json().contains("\"flows_total\":0"));
        assert!(m
            .to_prometheus()
            .contains("citymesh_latency_first_us_count 0\n"));
    }
}
