//! citymesh-stream: the always-on streaming engine.
//!
//! Every engine below this crate is a *batch*: materialize a workload,
//! run it to completion, report. A fallback network that matters is a
//! *service*: flows arrive open-loop — at whatever rate the disaster
//! dictates, not at whatever rate the mesh can absorb — and the system
//! must stay up through sustained overload. This crate models exactly
//! that regime, deterministically:
//!
//! * [`arrivals`] — open-loop arrival streams ([`ArrivalProcess`]:
//!   Poisson, diurnal, flash-crowd) materialized by thinning from
//!   per-candidate RNG sub-streams, so streams are reproducible and
//!   prefix-stable at any length.
//! * [`run_stream`] — the engine: flows are dealt to a fixed set of
//!   modeled servers, each a bounded virtual-time FIFO
//!   ([`ServerQueue`]). Arrivals that would overflow the queue or
//!   outwait their deadline are **shed with an explicit, counted
//!   outcome** before any planning or simulation work is spent on
//!   them — overload degrades service, never correctness or
//!   accounting.
//! * a **graceful degradation ladder**: as a queue deepens the engine
//!   sheds *optional* work first — trace capture at half capacity,
//!   retry-ladder rungs at three quarters — and whole flows only at
//!   the top. Load shedding is the last rung, not the first.
//! * **two-class priority admission**: an optional per-server headroom
//!   ([`StreamConfig::priority_reserve`]) that only
//!   [`FlowClass::Emergency`] arrivals may occupy. Class is drawn per
//!   flow from a seeded sub-stream, so under overload emergency
//!   traffic keeps getting through while bulk sheds first —
//!   deterministically.
//! * **mid-stream churn**: a [`Timeline`](citymesh_dynamics::Timeline)
//!   of world events applies at epoch barriers exactly as in
//!   `citymesh-dynamics`, with incremental route-cache invalidation;
//!   server queues survive the barrier.
//!
//! Reports embed a standard fleet report for the admitted flows plus
//! sojourn/wait/service/depth histograms, and the whole
//! [`StreamReport::digest`] is bit-identical across worker counts —
//! the modeled server count is a capacity knob, the thread count a
//! speed knob, and the two never mix.
//!
//! ```
//! use citymesh_core::{CityExperiment, ExperimentConfig};
//! use citymesh_dynamics::{ChurnConfig, Timeline};
//! use citymesh_map::CityArchetype;
//! use citymesh_stream::{
//!     generate_stream_flows, run_stream, ArrivalProcess, StreamConfig, StreamWorkload,
//! };
//! use citymesh_telemetry::TelemetryConfig;
//!
//! let exp = CityExperiment::prepare(
//!     CityArchetype::SurveyDowntown.generate(7),
//!     ExperimentConfig { seed: 7, ..ExperimentConfig::default() },
//! );
//! let flows = generate_stream_flows(
//!     exp.map().len(),
//!     &StreamWorkload {
//!         flows: 300,
//!         process: ArrivalProcess::Poisson { rate_hz: 2000.0 },
//!         seed: 7,
//!     },
//! );
//! let timeline = Timeline::materialize(
//!     &exp,
//!     &ChurnConfig { aftershocks: 0, battery_waves: 0, crew_repairs: 0, ..ChurnConfig::default() },
//! );
//! let cfg = StreamConfig { servers: 2, seed: 7, queue_capacity: 8, ..StreamConfig::default() };
//! let serial = run_stream(&exp, &flows, &timeline, &cfg, &TelemetryConfig::off()).0;
//! let parallel = run_stream(
//!     &exp, &flows, &timeline,
//!     &StreamConfig { workers: 4, ..cfg }, &TelemetryConfig::off(),
//! ).0;
//! assert_eq!(serial.digest(), parallel.digest());
//! assert_eq!(serial.offered, serial.admitted + serial.shed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod engine;

pub use arrivals::{
    generate_stream_flows, try_generate_stream_flows, ArrivalProcess, StreamWorkload,
};
pub use engine::{
    run_stream, try_run_stream, Admission, FlowClass, ServerQueue, ServiceModel, ShedReason,
    StreamConfig, StreamError, StreamReport, DOMAIN_CLASS,
};
