//! The always-on streaming engine.
//!
//! [`run_stream`] drives an open-loop arrival stream through a
//! prepared [`CityExperiment`] as a *queueing system*, not a batch:
//! flows arrive when the [arrival process](crate::arrivals) says they
//! do, are admitted to one of a fixed set of bounded per-server
//! queues, and are either served (planned through the shared
//! [`RouteCache`], simulated with the flow's own RNG sub-stream) or
//! **shed with an explicit, counted outcome** — never silently
//! dropped. Overload is a first-class regime with a graceful
//! degradation ladder (see [`ServerQueue`]), and the whole run keeps
//! the fleet engine's headline property: the report digest is
//! bit-identical across worker counts.
//!
//! # Determinism under parallelism
//!
//! Queueing state is *shared mutable state over time* — exactly what
//! the fleet engine's free-for-all chunk claiming cannot parallelize
//! deterministically. The engine therefore splits the thread count
//! from the **modeled server count** ([`StreamConfig::servers`]):
//!
//! * flows are assigned to servers by `flow.id % servers` — a pure
//!   function of the workload;
//! * each server's sub-stream is processed strictly serially, in
//!   arrival order, against that server's own [`ServerQueue`];
//! * worker threads claim whole servers, never slices of one.
//!
//! Admission, shedding, and the degradation rungs are then pure
//! functions of `(workload, config)`, independent of how many threads
//! raced over the servers — so 1 worker and 8 fold to the same
//! [`StreamReport::digest`], and `servers` (a digest-bearing modeling
//! knob) is free to exceed or trail the physical core count.
//!
//! # Virtual time
//!
//! The engine runs *faster than real time*: service is modeled, not
//! slept. Each queue is a ring of modeled completion instants; an
//! arrival at `t` first retires every completion `≤ t`, then admits or
//! sheds based on the depth that remains. A flow's modeled service
//! time is `base_ms + per_broadcast_ms × broadcasts`, tying queueing
//! pressure to the *actual* flooding work the delivery simulation
//! performed — congested conduits back the queue up more than clean
//! ones, which is what produces the saturation knee the streaming
//! bench sweeps for.

use std::collections::HashSet;
use std::time::Instant;

use citymesh_core::{
    CityExperiment, DeliveryScratch, PairOutcome, PlanScratch, PlannedFlow, RetryPolicy,
};
use citymesh_dynamics::{InvalidationPolicy, Timeline};
use citymesh_fleet::{
    record_flow_metrics, FleetReport, FleetTelemetry, FlowSpec, RouteCache, DOMAIN_MSG, DOMAIN_SIM,
};
use citymesh_simcore::stats::Histogram;
use citymesh_simcore::{substream_seed, Fnv64, SimRng};
use citymesh_telemetry::{metrics as tm, MetricSet, Postmortem, TelemetryConfig};

/// The modeled per-flow service-time law: `base_ms +
/// per_broadcast_ms × broadcasts`. Broadcast count comes from the
/// delivery simulation, so heavier flooding occupies a server longer.
#[derive(Clone, Copy, Debug)]
pub struct ServiceModel {
    /// Fixed service cost per admitted flow, milliseconds.
    pub base_ms: f64,
    /// Additional service cost per broadcast the delivery performed,
    /// milliseconds.
    pub per_broadcast_ms: f64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            base_ms: 2.0,
            per_broadcast_ms: 0.05,
        }
    }
}

/// Streaming-engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Worker threads. `0` means one per available CPU. Threads claim
    /// whole servers, so the effective pool never exceeds `servers`.
    /// **Not** digest-bearing.
    pub workers: usize,
    /// Modeled queueing servers. Flows map to servers by
    /// `flow.id % servers`; each server is one bounded FIFO processed
    /// serially. Digest-bearing: changing the server count changes
    /// admission outcomes (it is a capacity knob, not a thread knob).
    pub servers: usize,
    /// Root seed for per-flow simulation sub-streams (use the seed the
    /// stream workload was generated from).
    pub seed: u64,
    /// Plan cache misses with the district-overlay hierarchical
    /// planner. Requires [`CityExperiment::enable_hier`].
    pub use_hier_planner: bool,
    /// Bounded admission-queue depth per server. An arrival finding
    /// this many flows already queued is shed with
    /// [`ShedReason::Backpressure`].
    pub queue_capacity: usize,
    /// Maximum tolerable queue wait, milliseconds. An arrival whose
    /// modeled wait would exceed this is shed with
    /// [`ShedReason::Deadline`] *before* any planning or simulation
    /// work is spent on it. `f64::INFINITY` disables deadline shedding
    /// (backpressure still bounds the queue).
    pub deadline_ms: f64,
    /// The modeled service-time law.
    pub service: ServiceModel,
    /// Route-cache invalidation policy at mid-stream event barriers.
    pub invalidation: InvalidationPolicy,
    /// Fraction of offered flows classed [`FlowClass::Emergency`],
    /// drawn per flow from a dedicated seeded sub-stream
    /// ([`DOMAIN_CLASS`]) — a pure function of `(seed, flow.id)`, so
    /// class assignment is worker-count invariant. `0.0` (the default)
    /// keeps every flow [`FlowClass::Bulk`] and the engine
    /// byte-identical to its single-class behavior.
    pub emergency_fraction: f64,
    /// Queue slots per server reserved for emergency flows: bulk
    /// arrivals shed [`ShedReason::Backpressure`] at depth
    /// `queue_capacity − priority_reserve`, emergency arrivals only at
    /// the full capacity. `0` (the default) disables the reservation.
    /// Must be strictly less than `queue_capacity`.
    pub priority_reserve: usize,
    /// Run every admitted flow through the secure message plane (seal
    /// with the per-pair session key, receiver-side open + auth
    /// check). Requires [`CityExperiment::enable_encryption`]. Shed
    /// decisions and delivery outcomes are unchanged — encryption adds
    /// work, not randomness — but the per-class sealed counters join
    /// the digest once nonzero. Defaults to `false`.
    pub encrypted: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            workers: 1,
            servers: 4,
            seed: 0,
            use_hier_planner: false,
            queue_capacity: 64,
            deadline_ms: 250.0,
            service: ServiceModel::default(),
            invalidation: InvalidationPolicy::Incremental,
            emergency_fraction: 0.0,
            priority_reserve: 0,
            encrypted: false,
        }
    }
}

impl StreamConfig {
    /// The effective worker count (resolves `0` to the CPU count; the
    /// epoch loop additionally caps it at `servers`).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Checks this config against the experiment it is about to run
    /// on; every degenerate knob is a typed [`StreamError`] instead of
    /// a divide-by-zero or a hang deep inside a worker.
    pub fn validate(&self, exp: &CityExperiment) -> Result<(), StreamError> {
        if self.servers == 0 {
            return Err(StreamError::ZeroServers);
        }
        if self.queue_capacity == 0 {
            return Err(StreamError::ZeroQueueCapacity);
        }
        if self.deadline_ms.is_nan() || self.deadline_ms <= 0.0 {
            return Err(StreamError::InvalidDeadline {
                value: self.deadline_ms,
            });
        }
        if !self.service.base_ms.is_finite() || self.service.base_ms <= 0.0 {
            return Err(StreamError::InvalidServiceModel {
                field: "base_ms",
                value: self.service.base_ms,
            });
        }
        if !self.service.per_broadcast_ms.is_finite() || self.service.per_broadcast_ms < 0.0 {
            return Err(StreamError::InvalidServiceModel {
                field: "per_broadcast_ms",
                value: self.service.per_broadcast_ms,
            });
        }
        if self.use_hier_planner && exp.hier_planner().is_none() {
            return Err(StreamError::HierPlannerNotEnabled);
        }
        if self.encrypted && exp.secure_state().is_none() {
            return Err(StreamError::EncryptionNotEnabled);
        }
        if !self.emergency_fraction.is_finite() || !(0.0..=1.0).contains(&self.emergency_fraction) {
            return Err(StreamError::InvalidEmergencyFraction {
                value: self.emergency_fraction,
            });
        }
        if self.priority_reserve >= self.queue_capacity {
            return Err(StreamError::ReserveExceedsCapacity {
                reserve: self.priority_reserve,
                capacity: self.queue_capacity,
            });
        }
        Ok(())
    }
}

/// A rejected streaming run: configuration or workload misuse caught
/// before any worker spawns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamError {
    /// [`StreamConfig::servers`] was zero — there is nowhere to queue.
    ZeroServers,
    /// [`StreamConfig::queue_capacity`] was zero — every arrival would
    /// be shed and the run would measure nothing.
    ZeroQueueCapacity,
    /// [`StreamConfig::deadline_ms`] was zero, negative, or NaN
    /// (`f64::INFINITY` is the sanctioned "no deadline" value).
    InvalidDeadline {
        /// The rejected deadline.
        value: f64,
    },
    /// A [`ServiceModel`] knob was non-finite or out of range
    /// (`base_ms` must be positive — a zero-cost server never queues —
    /// and `per_broadcast_ms` nonnegative).
    InvalidServiceModel {
        /// Which knob.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// [`StreamConfig::use_hier_planner`] was set but
    /// [`CityExperiment::enable_hier`] never ran on the experiment.
    HierPlannerNotEnabled,
    /// [`StreamConfig::encrypted`] was set but
    /// [`CityExperiment::enable_encryption`] never ran on the
    /// experiment, so there is no key registry to seal with.
    EncryptionNotEnabled,
    /// [`StreamConfig::emergency_fraction`] was non-finite or outside
    /// `[0, 1]`.
    InvalidEmergencyFraction {
        /// The rejected fraction.
        value: f64,
    },
    /// [`StreamConfig::priority_reserve`] was at least
    /// [`StreamConfig::queue_capacity`] — bulk flows would have no
    /// admissible depth at all.
    ReserveExceedsCapacity {
        /// The rejected reservation.
        reserve: usize,
        /// The queue capacity it must stay under.
        capacity: usize,
    },
    /// The timeline carries events but the experiment has no fault
    /// state for them to mutate.
    MissingFaultState,
    /// The timeline carries events but the fault scenario plans on the
    /// live map; mid-stream cache invalidation relies on routes being
    /// a pure function of the pre-disaster (stale) map, exactly as the
    /// churn engine does.
    FreshMap,
    /// An arrival-stream workload needs at least two buildings to draw
    /// distinct endpoints from.
    TooFewBuildings {
        /// The offending building count.
        buildings: usize,
    },
    /// An [`ArrivalProcess`](crate::ArrivalProcess) knob was
    /// non-finite or out of range (rates must be positive — a zero
    /// background rate would hang the thinning sampler — and peaks
    /// must not dip below their base).
    InvalidArrivals {
        /// Which knob.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::ZeroServers => {
                write!(f, "StreamConfig::servers must be at least 1")
            }
            StreamError::ZeroQueueCapacity => {
                write!(
                    f,
                    "StreamConfig::queue_capacity must be at least 1 \
                     (a zero-depth queue sheds every arrival)"
                )
            }
            StreamError::InvalidDeadline { value } => {
                write!(
                    f,
                    "StreamConfig::deadline_ms must be positive (or infinite \
                     to disable deadline shedding), got {value}"
                )
            }
            StreamError::InvalidServiceModel { field, value } => {
                write!(f, "invalid service model: `{field}` = {value}")
            }
            StreamError::HierPlannerNotEnabled => {
                write!(
                    f,
                    "StreamConfig::use_hier_planner requires CityExperiment::enable_hier \
                     to have run on the experiment"
                )
            }
            StreamError::EncryptionNotEnabled => {
                write!(
                    f,
                    "StreamConfig::encrypted requires CityExperiment::enable_encryption \
                     to have run on the experiment"
                )
            }
            StreamError::InvalidEmergencyFraction { value } => {
                write!(
                    f,
                    "StreamConfig::emergency_fraction must lie in [0, 1], got {value}"
                )
            }
            StreamError::ReserveExceedsCapacity { reserve, capacity } => {
                write!(
                    f,
                    "StreamConfig::priority_reserve ({reserve}) must be strictly less \
                     than queue_capacity ({capacity}); bulk flows need at least one \
                     admissible slot"
                )
            }
            StreamError::MissingFaultState => {
                write!(
                    f,
                    "a timeline with events requires a fault state; prepare the \
                     experiment with a scenario"
                )
            }
            StreamError::FreshMap => {
                write!(
                    f,
                    "a timeline with events requires stale-map planning (mid-stream \
                     invalidation relies on routes being a pure function of the \
                     pre-disaster map)"
                )
            }
            StreamError::TooFewBuildings { buildings } => {
                write!(
                    f,
                    "stream workloads need at least two buildings to draw distinct \
                     endpoints, got {buildings}"
                )
            }
            StreamError::InvalidArrivals { field, value } => {
                write!(f, "invalid arrival process: `{field}` = {value}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Sub-stream domain for per-flow admission-class draws
/// ([`StreamConfig::emergency_fraction`]).
pub const DOMAIN_CLASS: u64 = 0xC1A5;

/// An offered flow's admission class. Class is decided per flow from a
/// seeded sub-stream of its id ([`DOMAIN_CLASS`]), never from queue
/// state, so it is a pure function of `(workload, config)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClass {
    /// Priority traffic (SOS check-ins, dispatch): admitted up to the
    /// full queue capacity, including the reserved headroom.
    Emergency,
    /// Everything else: sheds backpressure once depth reaches
    /// `queue_capacity − priority_reserve`, leaving the reserve for
    /// emergency arrivals.
    Bulk,
}

impl FlowClass {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FlowClass::Emergency => "emergency",
            FlowClass::Bulk => "bulk",
        }
    }
}

/// Why an arrival was turned away. Shedding is always explicit: every
/// offered flow ends up in exactly one of
/// [`admitted`](StreamReport::admitted),
/// [`shed_backpressure`](StreamReport::shed_backpressure), or
/// [`shed_deadline`](StreamReport::shed_deadline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The server's bounded queue was full.
    Backpressure,
    /// The modeled queue wait would have exceeded
    /// [`StreamConfig::deadline_ms`] — the flow would be stale by the
    /// time a server got to it, so no work is spent on it at all.
    Deadline,
}

impl ShedReason {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::Backpressure => "backpressure",
            ShedReason::Deadline => "deadline",
        }
    }
}

/// An admission decision from [`ServerQueue::offer`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// Admitted: service begins at `start_ms` (modeled virtual time).
    Admit {
        /// When a server frees up for this flow, ms.
        start_ms: f64,
        /// Queue depth found on arrival (after retiring completions).
        depth: u32,
        /// Degradation rung 1 fired: optional tracing work is shed for
        /// this flow.
        shed_tracing: bool,
        /// Degradation rung 2 fired: the retry ladder is capped to a
        /// single attempt for this flow.
        cap_retries: bool,
    },
    /// Turned away, with the reason and the depth that forced it.
    Shed {
        /// Why.
        reason: ShedReason,
        /// Queue depth found on arrival.
        depth: u32,
    },
}

/// One server's bounded admission queue in modeled virtual time: a
/// preallocated ring of completion instants.
///
/// An arrival at `t` first retires every completion `≤ t` (those
/// flows have left the system), then decides from the surviving depth:
///
/// 1. **depth ≥ the class cap** → shed,
///    [`ShedReason::Backpressure`]. The cap is the full capacity for
///    [`FlowClass::Emergency`] arrivals and `capacity −
///    priority_reserve` for [`FlowClass::Bulk`] — with a nonzero
///    reserve the last slots are headroom only priority traffic may
///    occupy, so emergency preempts bulk at the admission door;
/// 2. **wait > deadline** → shed, [`ShedReason::Deadline`] — decided
///    *before* planning or simulating, so overload never wastes work
///    on flows that would be discarded anyway;
/// 3. otherwise **admit**, flagging the degradation rungs: at depth
///    `≥ ⌈capacity/2⌉` optional work (trace capture) is shed first; at
///    depth `≥ ⌈3·capacity/4⌉` the retry ladder is capped to one
///    attempt. Load shedding of whole flows is the ladder's last rung,
///    not its first.
///
/// The ring never reallocates after construction — this type is what
/// the fleet crate's zero-allocation guard test drives.
#[derive(Clone, Debug)]
pub struct ServerQueue {
    /// Modeled completion instants, ms, a FIFO ring.
    completions: Vec<f64>,
    head: usize,
    len: usize,
    deadline_ms: f64,
    bulk_cap: usize,
    rung_trace: usize,
    rung_retry: usize,
    high_water: usize,
}

impl ServerQueue {
    /// A fresh empty queue sized and tuned by `cfg`.
    pub fn new(cfg: &StreamConfig) -> Self {
        let cap = cfg.queue_capacity;
        ServerQueue {
            completions: vec![0.0; cap],
            head: 0,
            len: 0,
            deadline_ms: cfg.deadline_ms,
            // Validation rejects reserve ≥ capacity; clamp anyway so a
            // hand-built queue still admits at least one bulk flow.
            bulk_cap: cap.saturating_sub(cfg.priority_reserve).max(1),
            rung_trace: cap.div_ceil(2),
            rung_retry: (3 * cap).div_ceil(4),
            high_water: 0,
        }
    }

    /// The bounded capacity.
    pub fn capacity(&self) -> usize {
        self.completions.len()
    }

    /// Flows currently queued (as of the last `offer`).
    pub fn depth(&self) -> usize {
        self.len
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Offers a [`FlowClass::Bulk`] arrival at modeled time
    /// `arrival_ms` — with a zero reserve this is the whole admission
    /// story; see [`ServerQueue::offer_class`].
    pub fn offer(&mut self, arrival_ms: f64) -> Admission {
        self.offer_class(arrival_ms, FlowClass::Bulk)
    }

    /// Offers an arrival of `class` at modeled time `arrival_ms`; see
    /// the type docs for the decision ladder. Arrivals must be offered
    /// in nondecreasing time order.
    pub fn offer_class(&mut self, arrival_ms: f64, class: FlowClass) -> Admission {
        let cap = self.capacity();
        while self.len > 0 && self.completions[self.head] <= arrival_ms {
            self.head = (self.head + 1) % cap;
            self.len -= 1;
        }
        let depth = self.len;
        let class_cap = match class {
            FlowClass::Emergency => cap,
            FlowClass::Bulk => self.bulk_cap,
        };
        if depth >= class_cap {
            return Admission::Shed {
                reason: ShedReason::Backpressure,
                depth: depth as u32,
            };
        }
        let start_ms = if depth == 0 {
            arrival_ms
        } else {
            self.completions[(self.head + depth - 1) % cap]
        };
        if start_ms - arrival_ms > self.deadline_ms {
            return Admission::Shed {
                reason: ShedReason::Deadline,
                depth: depth as u32,
            };
        }
        self.high_water = self.high_water.max(depth + 1);
        Admission::Admit {
            start_ms,
            depth: depth as u32,
            shed_tracing: depth >= self.rung_trace,
            cap_retries: depth >= self.rung_retry,
        }
    }

    /// Commits an admitted flow's service: records its completion
    /// instant and returns it. `start_ms` must be the value `offer`
    /// handed back for this flow.
    pub fn commit(&mut self, start_ms: f64, service_ms: f64) -> f64 {
        debug_assert!(self.len < self.capacity(), "commit without admission");
        let completion = start_ms + service_ms;
        let tail = (self.head + self.len) % self.capacity();
        self.completions[tail] = completion;
        self.len += 1;
        completion
    }
}

/// What one flow became. Workers record these; the fold after the pool
/// joins turns them into the report in ascending-id order.
enum FlowRecord {
    Shed {
        reason: ShedReason,
        depth: u32,
        class: FlowClass,
    },
    Served {
        outcome: PairOutcome,
        wait_ms: f64,
        service_ms: f64,
        depth: u32,
        shed_tracing: bool,
        retry_capped: bool,
        class: FlowClass,
    },
}

/// Aggregated results of one streaming run.
///
/// Everything except the wall-clock/work fields (`elapsed_secs`,
/// `workers`, `routes_evicted`) is deterministic in
/// `(world, workload, timeline, config)` and covered by
/// [`digest`](StreamReport::digest).
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Flows the arrival stream offered.
    pub offered: u64,
    /// Flows admitted and served.
    pub admitted: u64,
    /// Flows shed because a bounded queue was full.
    pub shed_backpressure: u64,
    /// Flows shed because their modeled wait would exceed the
    /// deadline.
    pub shed_deadline: u64,
    /// Admitted flows that crossed degradation rung 1 (trace capture
    /// suppressed).
    pub degraded_tracing: u64,
    /// Admitted flows that crossed degradation rung 2 (retry ladder
    /// capped to one attempt).
    pub degraded_retry: u64,
    /// Offered flows classed [`FlowClass::Emergency`]. Zero unless
    /// [`StreamConfig::emergency_fraction`] is set; the per-class
    /// counters join the digest only when this is nonzero, so
    /// single-class runs keep their historical digests.
    pub offered_emergency: u64,
    /// Offered flows classed [`FlowClass::Bulk`].
    pub offered_bulk: u64,
    /// Emergency flows shed (either reason).
    pub shed_emergency: u64,
    /// Bulk flows shed (either reason).
    pub shed_bulk: u64,
    /// Emergency-class flows whose payload was sealed (encrypted runs
    /// only). Joins the digest only when `fleet.sealed > 0`.
    pub sealed_emergency: u64,
    /// Bulk-class flows whose payload was sealed (encrypted runs
    /// only). Joins the digest only when `fleet.sealed > 0`.
    pub sealed_bulk: u64,
    /// Delivery outcomes of the *admitted* flows, folded exactly as
    /// the fleet engine folds a batch — on an underloaded stream this
    /// digest equals a plain `run_fleet` over the same flows and seed.
    pub fleet: FleetReport,
    /// Sojourn time (queue wait + service) of admitted flows, ms.
    pub sojourn_ms: Histogram,
    /// Queue wait of admitted flows, ms.
    pub wait_ms: Histogram,
    /// Modeled service time of admitted flows, ms.
    pub service_ms: Histogram,
    /// Queue depth observed by every offered flow (admitted or shed).
    pub queue_depth: Histogram,
    /// Deepest any server queue ever got.
    pub max_depth: u64,
    /// Completion instant of the last served flow, ms.
    pub makespan_ms: f64,
    /// Modeled servers.
    pub servers: usize,
    /// Epochs executed (`timeline.len() + 1`).
    pub epochs: u64,
    /// Mid-stream world events applied.
    pub events_applied: u64,
    /// Cached routes evicted at event barriers. **Not** covered by the
    /// digest.
    pub routes_evicted: u64,
    /// Wall-clock run time, seconds. **Not** covered by the digest.
    pub elapsed_secs: f64,
    /// Worker threads used. **Not** covered by the digest.
    pub workers: usize,
}

impl StreamReport {
    fn new(servers: usize) -> Self {
        StreamReport {
            offered: 0,
            admitted: 0,
            shed_backpressure: 0,
            shed_deadline: 0,
            degraded_tracing: 0,
            degraded_retry: 0,
            offered_emergency: 0,
            offered_bulk: 0,
            shed_emergency: 0,
            shed_bulk: 0,
            sealed_emergency: 0,
            sealed_bulk: 0,
            fleet: FleetReport::empty(),
            // Millisecond scales: 10 µs floor, ~10 % resolution.
            sojourn_ms: Histogram::new(1e-2, 1.1),
            wait_ms: Histogram::new(1e-2, 1.1),
            service_ms: Histogram::new(1e-2, 1.1),
            queue_depth: Histogram::new(1.0, 1.5),
            max_depth: 0,
            makespan_ms: 0.0,
            servers,
            epochs: 0,
            events_applied: 0,
            routes_evicted: 0,
            elapsed_secs: 0.0,
            workers: 0,
        }
    }

    /// Total flows shed (both reasons).
    pub fn shed(&self) -> u64 {
        self.shed_backpressure + self.shed_deadline
    }

    /// Shed fraction over all offered flows.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed() as f64 / self.offered as f64
    }

    /// Admitted fraction over all offered flows.
    pub fn admit_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.admitted as f64 / self.offered as f64
    }

    /// A sojourn-time quantile of the admitted flows, ms.
    pub fn sojourn_quantile(&self, q: f64) -> Option<f64> {
        self.sojourn_ms.quantile(q)
    }

    /// Shed fraction among emergency-class flows (0 when none were
    /// offered).
    pub fn emergency_shed_rate(&self) -> f64 {
        if self.offered_emergency == 0 {
            return 0.0;
        }
        self.shed_emergency as f64 / self.offered_emergency as f64
    }

    /// Shed fraction among bulk-class flows (0 when none were
    /// offered).
    pub fn bulk_shed_rate(&self) -> f64 {
        if self.offered_bulk == 0 {
            return 0.0;
        }
        self.shed_bulk as f64 / self.offered_bulk as f64
    }

    /// A 64-bit digest over every deterministic field. Equal digests ⇒
    /// byte-identical aggregate results; the engine's "N workers ==
    /// serial" invariant is checked by comparing these.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.mix(self.offered);
        h.mix(self.admitted);
        h.mix(self.shed_backpressure);
        h.mix(self.shed_deadline);
        h.mix(self.degraded_tracing);
        h.mix(self.degraded_retry);
        // Two-class admission is strictly opt-in: the class counters
        // join the digest only when emergency traffic exists, so
        // single-class runs keep their historical digests bit-for-bit.
        if self.offered_emergency > 0 {
            h.mix(self.offered_emergency);
            h.mix(self.offered_bulk);
            h.mix(self.shed_emergency);
            h.mix(self.shed_bulk);
        }
        // Encryption is opt-in by the same rule: the per-class sealed
        // counters join only when the run actually sealed something
        // (the embedded fleet digest grows its own sealed block then).
        if self.fleet.sealed > 0 {
            h.mix(self.sealed_emergency);
            h.mix(self.sealed_bulk);
        }
        h.mix(self.fleet.digest());
        h.mix(self.sojourn_ms.fingerprint());
        h.mix(self.wait_ms.fingerprint());
        h.mix(self.service_ms.fingerprint());
        h.mix(self.queue_depth.fingerprint());
        h.mix(self.max_depth);
        h.mix(self.makespan_ms.to_bits());
        h.mix(self.servers as u64);
        h.mix(self.epochs);
        h.mix(self.events_applied);
        h.value()
    }
}

/// What one worker brings home from an epoch.
#[derive(Default)]
struct EpochYield {
    records: Vec<(u64, FlowRecord)>,
    metrics: Option<MetricSet>,
    postmortems: Vec<Postmortem>,
}

impl EpochYield {
    fn empty(metrics: bool) -> Self {
        EpochYield {
            records: Vec::new(),
            metrics: metrics.then(MetricSet::new),
            postmortems: Vec::new(),
        }
    }
}

/// Runs an arrival stream through `exp`, shedding under overload.
///
/// `flows` must be sorted by ascending id with nondecreasing
/// `arrival_ms` (streams from
/// [`generate_stream_flows`](crate::generate_stream_flows) are). A
/// timeline event at time `t` is applied before flows with
/// `arrival_ms ≥ t`, exactly like the churn engine; pass an empty
/// timeline (e.g. a zero-event
/// [`Timeline::materialize`]) for a static world. Server queues
/// persist across event barriers — an event does not flush in-flight
/// work, only routes.
///
/// Returns the report plus merged telemetry when `tel` asks for any.
/// The report digest is identical traced or untraced and across
/// worker counts.
///
/// # Panics
/// Panics on a rejected configuration or workload
/// ([`StreamConfig::validate`] — use [`try_run_stream`] for a
/// `Result`) or when a worker thread panics.
pub fn run_stream(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    timeline: &Timeline,
    cfg: &StreamConfig,
    tel: &TelemetryConfig,
) -> (StreamReport, Option<FleetTelemetry>) {
    try_run_stream(exp, flows, timeline, cfg, tel).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_stream`] with configuration and prerequisite misuse as typed
/// [`StreamError`]s.
///
/// # Panics
/// Still panics when a worker thread panics mid-run.
pub fn try_run_stream(
    exp: &CityExperiment,
    flows: &[FlowSpec],
    timeline: &Timeline,
    cfg: &StreamConfig,
    tel: &TelemetryConfig,
) -> Result<(StreamReport, Option<FleetTelemetry>), StreamError> {
    cfg.validate(exp)?;
    let has_events = !timeline.is_empty();
    if has_events {
        let state = exp.fault_state().ok_or(StreamError::MissingFaultState)?;
        if !state.stale_map() {
            return Err(StreamError::FreshMap);
        }
    }
    debug_assert!(
        flows.windows(2).all(|w| w[0].id < w[1].id),
        "flows must be sorted by ascending id"
    );
    debug_assert!(
        flows.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms),
        "flow arrivals must be nondecreasing"
    );

    let started = Instant::now();

    // The live world. Only cloned when events will mutate it.
    let mut owned_primary: Option<CityExperiment> = has_events.then(|| exp.clone());
    // Degradation rung 2's single-attempt twin: same map, same plans,
    // same fault geometry, retry ladder capped to one attempt. Retry
    // policy never reaches the planner, so the twin shares the route
    // cache; it is only consulted at simulation time. Built once —
    // not per flow — and only when a ladder exists to cap.
    let mut degraded: Option<CityExperiment> = exp
        .fault_state()
        .filter(|fs| fs.retry().max_attempts > 1)
        .map(|fs| {
            let mut capped = fs.clone();
            capped.set_retry(RetryPolicy::none());
            exp.clone().with_fault_state(capped)
        });

    let cache = RouteCache::new();
    let mut queues: Vec<ServerQueue> = (0..cfg.servers).map(|_| ServerQueue::new(cfg)).collect();
    let mut records: Vec<(u64, FlowRecord)> = Vec::with_capacity(flows.len());
    let mut metrics = (!tel.is_off()).then(MetricSet::new);
    let mut postmortems: Vec<Postmortem> = Vec::new();
    let mut epochs = 0u64;
    let mut events_applied = 0u64;
    let mut routes_evicted = 0u64;

    let mut next = 0usize;
    for k in 0..=timeline.len() {
        let end = match timeline.events().get(k) {
            Some(ev) => next + flows[next..].partition_point(|f| f.arrival_ms < ev.at_ms),
            None => flows.len(),
        };
        let slice = &flows[next..end];
        next = end;
        epochs += 1;

        let world: &CityExperiment = owned_primary.as_ref().unwrap_or(exp);
        for y in run_epoch(
            world,
            degraded.as_ref(),
            slice,
            cfg,
            &cache,
            &mut queues,
            tel,
        ) {
            records.extend(y.records);
            if let (Some(m), Some(ym)) = (metrics.as_mut(), y.metrics.as_ref()) {
                m.merge(ym);
            }
            postmortems.extend(y.postmortems);
        }

        if let Some(ev) = timeline.events().get(k) {
            let primary = owned_primary
                .as_mut()
                .expect("events imply an owned primary world");
            let transition = primary.apply_world_event(&ev.changes);
            if let Some(d) = degraded.as_mut() {
                d.apply_world_event(&ev.changes);
            }
            // Server queues deliberately survive the barrier: an
            // aftershock does not un-queue flows already admitted.
            let evicted = match cfg.invalidation {
                InvalidationPolicy::FullFlush => cache.clear(),
                InvalidationPolicy::Incremental => {
                    let touched: HashSet<u32> =
                        transition.touched_buildings.iter().copied().collect();
                    let changed_aps: HashSet<u32> = ev.changes.iter().map(|&(ap, _)| ap).collect();
                    let apg = primary.ap_graph();
                    let mut candidates = Vec::new();
                    cache.evict_where(|plan| {
                        if touched.contains(&plan.src) || touched.contains(&plan.dst) {
                            return true;
                        }
                        let mut hit = false;
                        apg.for_each_ap_in_conduits(&plan.conduits, &mut candidates, |id, _| {
                            hit |= changed_aps.contains(&id);
                        });
                        hit
                    })
                }
            };
            events_applied += 1;
            routes_evicted += evicted;
            if let Some(m) = metrics.as_mut() {
                m.inc(tm::EVENTS_APPLIED);
                m.inc(tm::EPOCH_TRANSITIONS);
                m.add(tm::ROUTES_EVICTED, evicted);
            }
        }
    }

    // Deterministic fold: order by flow id, absorb serially.
    records.sort_unstable_by_key(|(id, _)| *id);
    let mut report = StreamReport::new(cfg.servers);
    for ((id, rec), spec) in records.iter().zip(flows) {
        debug_assert_eq!(*id, spec.id, "flows must be sorted by ascending id");
        report.offered += 1;
        match rec {
            FlowRecord::Shed {
                reason,
                depth,
                class,
            } => {
                match reason {
                    ShedReason::Backpressure => report.shed_backpressure += 1,
                    ShedReason::Deadline => report.shed_deadline += 1,
                }
                match class {
                    FlowClass::Emergency => {
                        report.offered_emergency += 1;
                        report.shed_emergency += 1;
                    }
                    FlowClass::Bulk => {
                        report.offered_bulk += 1;
                        report.shed_bulk += 1;
                    }
                }
                report.queue_depth.record(f64::from(*depth));
            }
            FlowRecord::Served {
                outcome,
                wait_ms,
                service_ms,
                depth,
                shed_tracing,
                retry_capped,
                class,
            } => {
                match class {
                    FlowClass::Emergency => report.offered_emergency += 1,
                    FlowClass::Bulk => report.offered_bulk += 1,
                }
                if outcome.sealed {
                    match class {
                        FlowClass::Emergency => report.sealed_emergency += 1,
                        FlowClass::Bulk => report.sealed_bulk += 1,
                    }
                }
                report.admitted += 1;
                report.fleet.absorb_outcome(spec, outcome);
                report.wait_ms.record(*wait_ms);
                report.service_ms.record(*service_ms);
                report.sojourn_ms.record(wait_ms + service_ms);
                report.queue_depth.record(f64::from(*depth));
                if *shed_tracing {
                    report.degraded_tracing += 1;
                }
                if *retry_capped {
                    report.degraded_retry += 1;
                }
                report.makespan_ms = report
                    .makespan_ms
                    .max(spec.arrival_ms + wait_ms + service_ms);
            }
        }
    }
    report.max_depth = queues
        .iter()
        .map(|q| q.high_water() as u64)
        .max()
        .unwrap_or(0);
    report.epochs = epochs;
    report.events_applied = events_applied;
    report.routes_evicted = routes_evicted;
    report.fleet.workers = cfg.effective_workers().min(cfg.servers).max(1);
    report.fleet.cache_hits = cache.hits();
    report.fleet.cache_misses = cache.misses();
    report.workers = report.fleet.workers;
    report.elapsed_secs = started.elapsed().as_secs_f64();
    report.fleet.elapsed_secs = report.elapsed_secs;

    if let Some(m) = metrics.as_mut() {
        m.gauge_max(tm::QUEUE_DEPTH_HIGH_WATER, report.max_depth);
    }
    postmortems.sort_by_key(|p: &Postmortem| (p.key, p.summary.src, p.summary.dst));
    let telemetry = metrics.map(|metrics| FleetTelemetry {
        metrics,
        postmortems,
    });
    Ok((report, telemetry))
}

/// One epoch: the slice's flows dealt to servers by `id % servers`,
/// each server processed serially, threads claiming whole servers.
fn run_epoch(
    world: &CityExperiment,
    degraded: Option<&CityExperiment>,
    slice: &[FlowSpec],
    cfg: &StreamConfig,
    cache: &RouteCache,
    queues: &mut [ServerQueue],
    tel: &TelemetryConfig,
) -> Vec<EpochYield> {
    let servers = queues.len();
    let workers = cfg.effective_workers().min(servers).max(1);

    // `base` is the server index of `qs[0]`.
    let process_servers = |base: usize, qs: &mut [ServerQueue]| -> EpochYield {
        let mut y = EpochYield::empty(tel.metrics);
        let mut plan_scratch = PlanScratch::new();
        // Two delivery scratches per worker: the plain one, and (when
        // tracing is on) a traced one. Degradation rung 1 routes a
        // flow through the plain scratch instead of configuring the
        // tracer per flow — same simulation, no capture work.
        let mut scratch = DeliveryScratch::new();
        let mut traced = tel
            .trace
            .enabled
            .then(|| DeliveryScratch::with_tracing(tel.trace));
        for (j, q) in qs.iter_mut().enumerate() {
            let s = (base + j) as u64;
            for flow in slice.iter().filter(|f| f.id % servers as u64 == s) {
                // Class is a pure function of (seed, flow.id) — never
                // of queue state — so it survives any worker layout.
                let class = if cfg.emergency_fraction > 0.0 {
                    let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_CLASS, flow.id));
                    if rng.chance(cfg.emergency_fraction) {
                        FlowClass::Emergency
                    } else {
                        FlowClass::Bulk
                    }
                } else {
                    FlowClass::Bulk
                };
                match q.offer_class(flow.arrival_ms, class) {
                    Admission::Shed { reason, depth } => {
                        if let Some(m) = y.metrics.as_mut() {
                            m.inc(match reason {
                                ShedReason::Backpressure => tm::SHED_BACKPRESSURE,
                                ShedReason::Deadline => tm::SHED_DEADLINE,
                            });
                            m.observe(tm::QUEUE_DEPTH, u64::from(depth));
                        }
                        y.records.push((
                            flow.id,
                            FlowRecord::Shed {
                                reason,
                                depth,
                                class,
                            },
                        ));
                    }
                    Admission::Admit {
                        start_ms,
                        depth,
                        shed_tracing,
                        cap_retries,
                    } => {
                        // Plans always come from the primary world:
                        // retry policy never reaches the planner, so
                        // the shared cache stays coherent for both.
                        let plan = cache.get_or_plan(flow.src, flow.dst, || {
                            let mut plan = PlannedFlow::empty(flow.src, flow.dst);
                            if cfg.use_hier_planner {
                                world.plan_flow_hier_into(
                                    flow.src,
                                    flow.dst,
                                    &mut plan_scratch,
                                    &mut plan,
                                );
                            } else {
                                world.plan_flow_into(
                                    flow.src,
                                    flow.dst,
                                    &mut plan_scratch,
                                    &mut plan,
                                );
                            }
                            plan
                        });
                        let sim_world = match (cap_retries, degraded) {
                            (true, Some(d)) => d,
                            _ => world,
                        };
                        let msg_id = substream_seed(cfg.seed, DOMAIN_MSG, flow.id);
                        let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_SIM, flow.id));
                        let outcome = match traced.as_mut() {
                            Some(ts) if !shed_tracing => {
                                ts.tracer_mut().set_next_key(flow.id);
                                if cfg.encrypted {
                                    sim_world.simulate_flow_secure_with(&plan, msg_id, &mut rng, ts)
                                } else {
                                    sim_world.simulate_flow_with(&plan, msg_id, &mut rng, ts)
                                }
                            }
                            _ if cfg.encrypted => sim_world.simulate_flow_secure_with(
                                &plan,
                                msg_id,
                                &mut rng,
                                &mut scratch,
                            ),
                            _ => {
                                sim_world.simulate_flow_with(&plan, msg_id, &mut rng, &mut scratch)
                            }
                        };
                        let service_ms = cfg.service.base_ms
                            + cfg.service.per_broadcast_ms * outcome.broadcasts as f64;
                        q.commit(start_ms, service_ms);
                        let wait_ms = start_ms - flow.arrival_ms;
                        if let Some(m) = y.metrics.as_mut() {
                            record_flow_metrics(m, &outcome);
                            m.inc(tm::ADMITTED);
                            m.observe(tm::QUEUE_DEPTH, u64::from(depth));
                            m.observe(tm::STREAM_WAIT, (wait_ms * 1000.0).round() as u64);
                            m.observe(
                                tm::STREAM_SOJOURN,
                                ((wait_ms + service_ms) * 1000.0).round() as u64,
                            );
                            if shed_tracing {
                                m.inc(tm::DEGRADED_TRACING);
                            }
                            if cap_retries {
                                m.inc(tm::DEGRADED_RETRY);
                            }
                        }
                        y.records.push((
                            flow.id,
                            FlowRecord::Served {
                                outcome,
                                wait_ms,
                                service_ms,
                                depth,
                                shed_tracing,
                                retry_capped: cap_retries,
                                class,
                            },
                        ));
                    }
                }
            }
        }
        if let Some(ts) = traced.as_mut() {
            let tracer = ts.tracer_mut();
            if let Some(m) = y.metrics.as_mut() {
                m.add(tm::POSTMORTEMS, tracer.captured());
                m.add(tm::TRACE_DROPPED, tracer.dropped_total());
                m.gauge_max(tm::TRACE_HIGH_WATER, tracer.high_water() as u64);
            }
            y.postmortems = tracer.take_postmortems();
        }
        if let Some(m) = y.metrics.as_mut() {
            let h = plan_scratch.hier_stats();
            m.add(tm::HIER_QUERIES, h.queries);
            m.add(tm::HIER_DIRECT_ROUTES, h.direct_routes);
            m.add(tm::HIER_OVERLAY_SETTLED, h.overlay_settled);
            m.add(tm::HIER_EXPANSIONS, h.expansions);
        }
        y
    };

    if workers == 1 {
        return vec![process_servers(0, queues)];
    }
    let chunk = servers.div_ceil(workers);
    let nchunks = servers.div_ceil(chunk);
    let mut slots: Vec<Option<EpochYield>> = Vec::new();
    slots.resize_with(nchunks, || None);
    crossbeam::thread::scope(|sc| {
        for (i, (qs, slot)) in queues.chunks_mut(chunk).zip(slots.iter_mut()).enumerate() {
            let process_servers = &process_servers;
            sc.spawn(move |_| {
                *slot = Some(process_servers(i * chunk, qs));
            });
        }
    })
    .expect("stream worker panicked");
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{generate_stream_flows, ArrivalProcess, StreamWorkload};
    use citymesh_core::{ExperimentConfig, FaultScenario, HierParams, RetryPolicy};
    use citymesh_dynamics::ChurnConfig;
    use citymesh_fleet::{run_fleet, FleetConfig};
    use citymesh_map::CityArchetype;

    fn world(seed: u64) -> CityExperiment {
        CityExperiment::prepare(
            CityArchetype::SurveyDowntown.generate(seed),
            ExperimentConfig {
                seed,
                ..ExperimentConfig::default()
            },
        )
    }

    fn faulted_world(seed: u64, scenario: FaultScenario) -> CityExperiment {
        CityExperiment::prepare(
            CityArchetype::SurveyDowntown.generate(seed),
            ExperimentConfig {
                seed,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        )
    }

    fn poisson_flows(exp: &CityExperiment, flows: usize, rate_hz: f64, seed: u64) -> Vec<FlowSpec> {
        generate_stream_flows(
            exp.map().len(),
            &StreamWorkload {
                flows,
                process: ArrivalProcess::Poisson { rate_hz },
                seed,
            },
        )
    }

    fn empty_timeline(exp: &CityExperiment) -> Timeline {
        Timeline::materialize(
            exp,
            &ChurnConfig {
                aftershocks: 0,
                battery_waves: 0,
                crew_repairs: 0,
                ..ChurnConfig::default()
            },
        )
    }

    #[test]
    fn digest_is_worker_count_invariant() {
        let exp = world(21);
        let flows = poisson_flows(&exp, 600, 900.0, 21);
        let tl = empty_timeline(&exp);
        let digests: Vec<u64> = [1usize, 4, 8]
            .iter()
            .map(|&w| {
                let cfg = StreamConfig {
                    workers: w,
                    servers: 8,
                    seed: 21,
                    queue_capacity: 16,
                    deadline_ms: 60.0,
                    ..StreamConfig::default()
                };
                run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off())
                    .0
                    .digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1], "1 vs 4 workers");
        assert_eq!(digests[0], digests[2], "1 vs 8 workers");
    }

    #[test]
    fn encrypted_stream_is_worker_count_invariant() {
        // The encrypted always-on engine inherits the determinism
        // contract: racing workers share one session-key cache, yet the
        // digest — which now folds the per-class sealed counters — must
        // not move with the worker count.
        let mut exp = world(29);
        exp.enable_encryption();
        let flows = poisson_flows(&exp, 400, 600.0, 29);
        let tl = empty_timeline(&exp);
        let reports: Vec<StreamReport> = [1usize, 4, 8]
            .iter()
            .map(|&w| {
                let cfg = StreamConfig {
                    workers: w,
                    servers: 8,
                    seed: 29,
                    queue_capacity: 16,
                    deadline_ms: 60.0,
                    encrypted: true,
                    ..StreamConfig::default()
                };
                run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off()).0
            })
            .collect();
        assert_eq!(reports[0].digest(), reports[1].digest(), "1 vs 4 workers");
        assert_eq!(reports[0].digest(), reports[2].digest(), "1 vs 8 workers");
        let r = &reports[0];
        assert!(r.fleet.sealed > 0, "admitted flows must be sealed");
        assert_eq!(
            r.sealed_emergency + r.sealed_bulk,
            r.fleet.sealed,
            "per-class sealed counts must partition the sealed total"
        );
        assert_eq!(r.fleet.auth_failures, 0);
    }

    #[test]
    fn encrypted_stream_off_matches_plain_digest() {
        // Holding a key registry without opting in must be invisible:
        // same digest as a world that never called enable_encryption.
        let plain = world(34);
        let mut keyed = world(34);
        keyed.enable_encryption();
        let flows = poisson_flows(&plain, 300, 200.0, 34);
        let cfg = StreamConfig {
            workers: 2,
            servers: 4,
            seed: 34,
            ..StreamConfig::default()
        };
        let (a, _) = run_stream(
            &plain,
            &flows,
            &empty_timeline(&plain),
            &cfg,
            &TelemetryConfig::off(),
        );
        let (b, _) = run_stream(
            &keyed,
            &flows,
            &empty_timeline(&keyed),
            &cfg,
            &TelemetryConfig::off(),
        );
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.sealed_emergency, 0);
        assert_eq!(b.sealed_bulk, 0);
    }

    #[test]
    fn underloaded_stream_matches_plain_fleet() {
        // Far below saturation nothing queues long and nothing sheds,
        // and the embedded fleet report is exactly a batch run of the
        // same flows: same seed, same sub-stream domains, same plans.
        let exp = world(22);
        let flows = poisson_flows(&exp, 300, 30.0, 22);
        let tl = empty_timeline(&exp);
        let cfg = StreamConfig {
            workers: 2,
            servers: 4,
            seed: 22,
            ..StreamConfig::default()
        };
        let (r, _) = run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off());
        assert_eq!(r.offered, 300);
        assert_eq!(r.admitted, 300);
        assert_eq!(r.shed(), 0);
        let batch = run_fleet(
            &exp,
            &flows,
            &FleetConfig {
                workers: 2,
                seed: 22,
                ..FleetConfig::default()
            },
        );
        assert_eq!(
            r.fleet.digest(),
            batch.digest(),
            "an underloaded stream is a batch in disguise"
        );
    }

    #[test]
    fn overload_sheds_explicitly_and_bounds_sojourn() {
        // 2 servers at ~2 ms base service ≈ 1000 flows/s of capacity;
        // offer ~4000/s. The engine must stay up, account for every
        // flow, and bound the admitted flows' sojourn by construction.
        let exp = world(23);
        let flows = poisson_flows(&exp, 1500, 4000.0, 23);
        let tl = empty_timeline(&exp);
        let cfg = StreamConfig {
            workers: 2,
            servers: 2,
            seed: 23,
            queue_capacity: 16,
            deadline_ms: 40.0,
            ..StreamConfig::default()
        };
        let (r, _) = run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off());
        assert_eq!(r.offered, 1500);
        assert_eq!(
            r.offered,
            r.admitted + r.shed_backpressure + r.shed_deadline,
            "every offered flow is accounted for"
        );
        assert!(r.shed() > 0, "2-4x overload must shed");
        assert!(r.admitted > 0, "overload must not collapse to zero service");
        // Wait is bounded by the deadline at admission, so sojourn is
        // bounded by deadline + the longest service time.
        let p99 = r.sojourn_quantile(0.99).expect("admitted flows exist");
        let service_max = r.service_ms.max().expect("admitted flows exist");
        assert!(
            p99 <= cfg.deadline_ms + service_max + 1e-9,
            "p99 sojourn {p99} ms must stay under deadline {} + max service {service_max}",
            cfg.deadline_ms
        );
        assert!(r.wait_ms.max().expect("served") <= cfg.deadline_ms + 1e-9);
        // The depth histogram saw every offered flow.
        assert_eq!(r.queue_depth.len(), r.offered);
        assert!(r.max_depth as usize <= cfg.queue_capacity);
    }

    #[test]
    fn degradation_ladder_sheds_optional_work_before_flows() {
        // Moderate overload: queues climb through the tracing rung and
        // the retry rung before backpressure bites.
        let mut scenario = FaultScenario::iid(0.25);
        scenario.retry = RetryPolicy::ladder();
        let exp = faulted_world(24, scenario);
        let flows = poisson_flows(&exp, 1200, 3000.0, 24);
        let tl = empty_timeline(&exp);
        let cfg = StreamConfig {
            workers: 2,
            servers: 2,
            seed: 24,
            queue_capacity: 32,
            deadline_ms: 200.0,
            ..StreamConfig::default()
        };
        let (r, _) = run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off());
        assert!(
            r.degraded_tracing > 0,
            "rung 1 (shed tracing) must fire under sustained overload"
        );
        assert!(
            r.degraded_retry > 0,
            "rung 2 (cap retries) must fire under sustained overload"
        );
        assert!(
            r.degraded_tracing >= r.degraded_retry,
            "rung 1 triggers at a shallower depth than rung 2"
        );
        // Tracing is optional work: shedding it must not perturb
        // outcomes. Traced and untraced digests agree even while the
        // ladder is firing.
        let (traced, telemetry) = run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::full(5));
        assert_eq!(
            r.digest(),
            traced.digest(),
            "telemetry must not perturb outcomes"
        );
        let telemetry = telemetry.expect("telemetry requested");
        let m = &telemetry.metrics;
        assert_eq!(m.counter(tm::ADMITTED), r.admitted);
        assert_eq!(m.counter(tm::SHED_BACKPRESSURE), r.shed_backpressure);
        assert_eq!(m.counter(tm::SHED_DEADLINE), r.shed_deadline);
        assert_eq!(m.counter(tm::DEGRADED_TRACING), r.degraded_tracing);
        assert_eq!(m.counter(tm::DEGRADED_RETRY), r.degraded_retry);
        assert_eq!(m.gauge(tm::QUEUE_DEPTH_HIGH_WATER), r.max_depth);
        // Rung-1 flows produce no postmortems, so captures can only
        // come from the still-traced majority.
        assert_eq!(
            m.counter(tm::POSTMORTEMS),
            telemetry.postmortems.len() as u64
        );
    }

    #[test]
    fn retry_capping_actually_caps_attempts() {
        // Deep overload with a retry ladder: rung-2 flows must be
        // observable as single-attempt outcomes. Compare against the
        // same stream with an effectively infinite queue (no rungs
        // fire) — fewer total attempts under pressure.
        let mut scenario = FaultScenario::iid(0.3);
        scenario.retry = RetryPolicy::ladder();
        let exp = faulted_world(25, scenario);
        let flows = poisson_flows(&exp, 800, 4000.0, 25);
        let tl = empty_timeline(&exp);
        let pressured = StreamConfig {
            servers: 2,
            seed: 25,
            queue_capacity: 24,
            deadline_ms: f64::INFINITY,
            ..StreamConfig::default()
        };
        let relaxed = StreamConfig {
            queue_capacity: 100_000,
            ..pressured
        };
        let (p, _) = run_stream(&exp, &flows, &tl, &pressured, &TelemetryConfig::off());
        let (rl, _) = run_stream(&exp, &flows, &tl, &relaxed, &TelemetryConfig::off());
        assert!(p.degraded_retry > 0, "pressured run must cap retries");
        assert_eq!(rl.degraded_retry, 0, "relaxed run must not");
        assert_eq!(rl.admitted, rl.offered, "unbounded queue admits everything");
        // Same admitted flow under capping can only spend fewer (or
        // equal) attempts; with hundreds of capped flows the totals
        // must strictly separate.
        let attempts = |r: &StreamReport| {
            r.fleet.retry_attempts.len() as f64 * r.fleet.retry_attempts.mean().unwrap_or(0.0)
        };
        assert!(
            attempts(&p) / p.admitted as f64 <= attempts(&rl) / rl.admitted as f64,
            "capped streams must average fewer attempts per admitted flow"
        );
    }

    #[test]
    fn mid_stream_events_apply_at_epoch_barriers() {
        let exp = faulted_world(26, FaultScenario::district_blackouts(1, 100.0));
        let flows = poisson_flows(&exp, 900, 600.0, 26);
        let tl = Timeline::materialize(
            &exp,
            &ChurnConfig {
                seed: 26,
                horizon_ms: flows.last().unwrap().arrival_ms,
                ..ChurnConfig::default()
            },
        );
        assert!(!tl.is_empty(), "churn config must produce events");
        let cfg = StreamConfig {
            workers: 3,
            servers: 6,
            seed: 26,
            queue_capacity: 32,
            deadline_ms: 100.0,
            ..StreamConfig::default()
        };
        let (r, _) = run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off());
        assert_eq!(r.epochs, tl.len() as u64 + 1);
        assert_eq!(r.events_applied, tl.len() as u64);
        assert_eq!(r.offered, 900);
        // Worker-count invariance holds across event barriers too.
        let serial = run_stream(
            &exp,
            &flows,
            &tl,
            &StreamConfig { workers: 1, ..cfg },
            &TelemetryConfig::off(),
        )
        .0;
        assert_eq!(r.digest(), serial.digest(), "1 vs 3 workers with churn");
        // And invalidation policy changes work, not outcomes.
        let flushed = run_stream(
            &exp,
            &flows,
            &tl,
            &StreamConfig {
                invalidation: InvalidationPolicy::FullFlush,
                ..cfg
            },
            &TelemetryConfig::off(),
        )
        .0;
        assert_eq!(r.digest(), flushed.digest());
        assert!(r.routes_evicted <= flushed.routes_evicted);
    }

    #[test]
    fn hier_stream_matches_flat_digest() {
        let mut exp = world(27);
        exp.enable_hier(&HierParams::default());
        let flows = poisson_flows(&exp, 400, 1500.0, 27);
        let tl = empty_timeline(&exp);
        let flat = StreamConfig {
            servers: 3,
            seed: 27,
            queue_capacity: 16,
            deadline_ms: 50.0,
            ..StreamConfig::default()
        };
        let hier = StreamConfig {
            use_hier_planner: true,
            ..flat
        };
        let (rf, _) = run_stream(&exp, &flows, &tl, &flat, &TelemetryConfig::off());
        let (rh, _) = run_stream(&exp, &flows, &tl, &hier, &TelemetryConfig::off());
        // The hierarchical planner is exact, so identical routes feed
        // identical service times and identical queueing decisions.
        assert_eq!(rf.digest(), rh.digest());
    }

    #[test]
    fn server_queue_ring_sheds_and_drains() {
        let cfg = StreamConfig {
            queue_capacity: 2,
            deadline_ms: 10.0,
            ..StreamConfig::default()
        };
        let mut q = ServerQueue::new(&cfg);
        // Two 5 ms jobs arriving back-to-back fill the queue.
        for t in [0.0, 1.0] {
            match q.offer(t) {
                Admission::Admit { start_ms, .. } => {
                    q.commit(start_ms, 5.0);
                }
                other => panic!("expected admit at t={t}, got {other:?}"),
            }
        }
        assert_eq!(q.depth(), 2);
        // A third immediate arrival hits backpressure.
        assert_eq!(
            q.offer(1.5),
            Admission::Shed {
                reason: ShedReason::Backpressure,
                depth: 2
            }
        );
        // At t=6 the first job (0..5) has completed: depth drains to 1
        // and the wait (10-6=4 ms... job 2 completes at 10) fits the
        // 10 ms deadline.
        match q.offer(6.0) {
            Admission::Admit {
                start_ms, depth, ..
            } => {
                assert_eq!(depth, 1);
                assert!((start_ms - 10.0).abs() < 1e-12, "starts when job 2 ends");
                q.commit(start_ms, 30.0);
            }
            other => panic!("expected admit at t=6, got {other:?}"),
        }
        // At t=11 job 2 (done at 10) has retired, leaving only the
        // 30 ms job (10..40): an arrival would wait 29 ms > 10 ms.
        assert_eq!(
            q.offer(11.0),
            Admission::Shed {
                reason: ShedReason::Deadline,
                depth: 1
            }
        );
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn degradation_rungs_order_by_depth() {
        let cfg = StreamConfig {
            queue_capacity: 8,
            deadline_ms: f64::INFINITY,
            ..StreamConfig::default()
        };
        let mut q = ServerQueue::new(&cfg);
        let mut saw = Vec::new();
        // Back-to-back arrivals with long service build depth 0..=7.
        for t in 0..8 {
            match q.offer(t as f64) {
                Admission::Admit {
                    start_ms,
                    depth,
                    shed_tracing,
                    cap_retries,
                } => {
                    saw.push((depth, shed_tracing, cap_retries));
                    q.commit(start_ms, 1000.0);
                }
                other => panic!("unexpected shed: {other:?}"),
            }
        }
        // capacity 8 → rung 1 at depth ≥ 4, rung 2 at depth ≥ 6.
        for (depth, shed_tracing, cap_retries) in saw {
            assert_eq!(shed_tracing, depth >= 4, "rung 1 at depth {depth}");
            assert_eq!(cap_retries, depth >= 6, "rung 2 at depth {depth}");
            if cap_retries {
                assert!(shed_tracing, "rung 2 implies rung 1");
            }
        }
        assert_eq!(
            q.offer(7.5),
            Admission::Shed {
                reason: ShedReason::Backpressure,
                depth: 8
            }
        );
    }

    #[test]
    fn reserved_headroom_admits_emergency_after_bulk_sheds() {
        let cfg = StreamConfig {
            queue_capacity: 4,
            priority_reserve: 2,
            deadline_ms: f64::INFINITY,
            ..StreamConfig::default()
        };
        let mut q = ServerQueue::new(&cfg);
        // Two long jobs fill the bulk share (capacity 4 − reserve 2).
        for t in [0.0, 0.5] {
            match q.offer_class(t, FlowClass::Bulk) {
                Admission::Admit { start_ms, .. } => {
                    q.commit(start_ms, 1000.0);
                }
                other => panic!("expected bulk admit at t={t}, got {other:?}"),
            }
        }
        // The next bulk arrival sheds; an emergency arrival at the very
        // same instant still gets a reserved slot.
        assert_eq!(
            q.offer_class(1.0, FlowClass::Bulk),
            Admission::Shed {
                reason: ShedReason::Backpressure,
                depth: 2
            }
        );
        match q.offer_class(1.0, FlowClass::Emergency) {
            Admission::Admit {
                start_ms, depth, ..
            } => {
                assert_eq!(depth, 2);
                q.commit(start_ms, 1000.0);
            }
            other => panic!("expected emergency admit, got {other:?}"),
        }
        match q.offer_class(1.5, FlowClass::Emergency) {
            Admission::Admit {
                start_ms, depth, ..
            } => {
                assert_eq!(depth, 3);
                q.commit(start_ms, 1000.0);
            }
            other => panic!("expected emergency admit, got {other:?}"),
        }
        // Full is full, even for emergency traffic.
        assert_eq!(
            q.offer_class(2.0, FlowClass::Emergency),
            Admission::Shed {
                reason: ShedReason::Backpressure,
                depth: 4
            }
        );
    }

    #[test]
    fn priority_classes_shed_bulk_before_emergency_at_overload() {
        // 2 servers at ~2 ms base service ≈ 1000 flows/s of capacity,
        // offered ~4000/s: sustained backpressure. With a quarter of
        // the queue reserved, emergency flows must shed at a strictly
        // lower rate than bulk.
        let exp = world(31);
        let flows = poisson_flows(&exp, 1500, 4000.0, 31);
        let tl = empty_timeline(&exp);
        let cfg = StreamConfig {
            workers: 1,
            servers: 2,
            seed: 31,
            queue_capacity: 16,
            priority_reserve: 4,
            emergency_fraction: 0.25,
            deadline_ms: f64::INFINITY,
            ..StreamConfig::default()
        };
        let (r, _) = run_stream(&exp, &flows, &tl, &cfg, &TelemetryConfig::off());
        assert_eq!(r.offered_emergency + r.offered_bulk, r.offered);
        assert_eq!(r.shed_emergency + r.shed_bulk, r.shed());
        assert!(r.offered_emergency > 100, "fraction 0.25 of 1500 flows");
        assert!(r.shed_bulk > 0, "4x overload must shed bulk");
        assert!(
            r.emergency_shed_rate() < r.bulk_shed_rate(),
            "reserved headroom must protect emergency traffic: \
             emergency {:.3} vs bulk {:.3}",
            r.emergency_shed_rate(),
            r.bulk_shed_rate()
        );
        // Class assignment is a pure function of (seed, flow.id), so
        // the invariance headline survives the two-class path.
        let parallel = run_stream(
            &exp,
            &flows,
            &tl,
            &StreamConfig { workers: 4, ..cfg },
            &TelemetryConfig::off(),
        )
        .0;
        assert_eq!(r.digest(), parallel.digest(), "1 vs 4 workers with classes");
    }

    #[test]
    fn class_split_with_zero_reserve_keeps_outcomes() {
        // With no reserved headroom both classes share one cap, so
        // classing flows changes only the accounting: every legacy
        // field matches the single-class run bit-for-bit, and only the
        // per-class counters (which then join the digest) differ.
        let exp = world(32);
        let flows = poisson_flows(&exp, 800, 3000.0, 32);
        let tl = empty_timeline(&exp);
        let plain = StreamConfig {
            servers: 2,
            seed: 32,
            queue_capacity: 16,
            deadline_ms: 50.0,
            ..StreamConfig::default()
        };
        let classed = StreamConfig {
            emergency_fraction: 0.3,
            ..plain
        };
        let (p, _) = run_stream(&exp, &flows, &tl, &plain, &TelemetryConfig::off());
        let (c, _) = run_stream(&exp, &flows, &tl, &classed, &TelemetryConfig::off());
        assert_eq!(p.offered_emergency, 0, "default config stays single-class");
        assert!(c.offered_emergency > 0);
        assert_eq!(p.admitted, c.admitted);
        assert_eq!(p.shed_backpressure, c.shed_backpressure);
        assert_eq!(p.shed_deadline, c.shed_deadline);
        assert_eq!(p.fleet.digest(), c.fleet.digest());
        assert_ne!(
            p.digest(),
            c.digest(),
            "emergency traffic folds the class counters into the digest"
        );
    }

    #[test]
    fn config_validation_types_every_rejection() {
        let exp = world(28);
        let ok = StreamConfig::default();
        assert_eq!(ok.validate(&exp), Ok(()));
        let cases: Vec<(StreamConfig, StreamError)> = vec![
            (StreamConfig { servers: 0, ..ok }, StreamError::ZeroServers),
            (
                StreamConfig {
                    queue_capacity: 0,
                    ..ok
                },
                StreamError::ZeroQueueCapacity,
            ),
            (
                StreamConfig {
                    deadline_ms: 0.0,
                    ..ok
                },
                StreamError::InvalidDeadline { value: 0.0 },
            ),
            (
                StreamConfig {
                    deadline_ms: -5.0,
                    ..ok
                },
                StreamError::InvalidDeadline { value: -5.0 },
            ),
            (
                StreamConfig {
                    service: ServiceModel {
                        base_ms: 0.0,
                        per_broadcast_ms: 0.05,
                    },
                    ..ok
                },
                StreamError::InvalidServiceModel {
                    field: "base_ms",
                    value: 0.0,
                },
            ),
            (
                StreamConfig {
                    service: ServiceModel {
                        base_ms: 2.0,
                        per_broadcast_ms: -1.0,
                    },
                    ..ok
                },
                StreamError::InvalidServiceModel {
                    field: "per_broadcast_ms",
                    value: -1.0,
                },
            ),
            (
                StreamConfig {
                    use_hier_planner: true,
                    ..ok
                },
                StreamError::HierPlannerNotEnabled,
            ),
            (
                StreamConfig {
                    emergency_fraction: 1.5,
                    ..ok
                },
                StreamError::InvalidEmergencyFraction { value: 1.5 },
            ),
            (
                StreamConfig {
                    emergency_fraction: -0.1,
                    ..ok
                },
                StreamError::InvalidEmergencyFraction { value: -0.1 },
            ),
            (
                StreamConfig {
                    queue_capacity: 8,
                    priority_reserve: 8,
                    ..ok
                },
                StreamError::ReserveExceedsCapacity {
                    reserve: 8,
                    capacity: 8,
                },
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(&exp), Err(want));
        }
        // NaN deadline (can't use assert_eq: NaN != NaN).
        assert!(matches!(
            StreamConfig {
                deadline_ms: f64::NAN,
                ..ok
            }
            .validate(&exp),
            Err(StreamError::InvalidDeadline { .. })
        ));
        // Infinite deadline is the sanctioned "no deadline" spelling.
        assert_eq!(
            StreamConfig {
                deadline_ms: f64::INFINITY,
                ..ok
            }
            .validate(&exp),
            Ok(())
        );
        // Timeline prerequisites surface as typed errors too.
        let flows = poisson_flows(&exp, 50, 100.0, 28);
        let faulted = faulted_world(28, FaultScenario::district_blackouts(1, 100.0));
        let tl = Timeline::materialize(
            &faulted,
            &ChurnConfig {
                seed: 28,
                horizon_ms: 2000.0,
                ..ChurnConfig::default()
            },
        );
        assert!(!tl.is_empty());
        let err = try_run_stream(&exp, &flows, &tl, &ok, &TelemetryConfig::off()).unwrap_err();
        assert_eq!(err, StreamError::MissingFaultState);
        let mut fresh_scenario = FaultScenario::district_blackouts(1, 100.0);
        fresh_scenario.stale_map = false;
        let fresh = faulted_world(28, fresh_scenario);
        let err = try_run_stream(&fresh, &flows, &tl, &ok, &TelemetryConfig::off()).unwrap_err();
        assert_eq!(err, StreamError::FreshMap);
        // Error messages surface the prerequisite by name.
        assert!(StreamError::HierPlannerNotEnabled
            .to_string()
            .contains("enable_hier"));
        assert!(StreamError::FreshMap.to_string().contains("stale"));
    }

    #[test]
    fn server_count_is_a_modeling_knob_not_a_thread_knob() {
        // Changing workers never changes the digest; changing servers
        // legitimately does (it is capacity).
        let exp = world(29);
        let flows = poisson_flows(&exp, 500, 2500.0, 29);
        let tl = empty_timeline(&exp);
        let base = StreamConfig {
            servers: 2,
            seed: 29,
            queue_capacity: 8,
            deadline_ms: 30.0,
            ..StreamConfig::default()
        };
        let two = run_stream(&exp, &flows, &tl, &base, &TelemetryConfig::off()).0;
        let eight = run_stream(
            &exp,
            &flows,
            &tl,
            &StreamConfig { servers: 8, ..base },
            &TelemetryConfig::off(),
        )
        .0;
        assert_ne!(
            two.digest(),
            eight.digest(),
            "4x the servers must change admission outcomes"
        );
        assert!(
            eight.shed() < two.shed(),
            "more servers shed less ({} vs {})",
            eight.shed(),
            two.shed()
        );
    }
}
