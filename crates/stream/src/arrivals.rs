//! Deterministic open-loop arrival streams.
//!
//! A batch workload materializes a fixed flow count and stops; an
//! always-on engine is fed by an *arrival process* — flows keep
//! coming at a time-varying rate λ(t), and the engine must keep up or
//! shed. This module generates those streams deterministically by
//! **thinning**: candidate arrivals are drawn as a homogeneous
//! Poisson process at the process's peak rate λ_max (a running sum of
//! exponential gaps), and candidate `k` — whose gap and accept/reject
//! coin both come from its own SplitMix64 sub-stream
//! `substream_seed(seed, DOMAIN, k)` — survives with probability
//! λ(t_k)/λ_max. Accepted candidates become [`FlowSpec`]s with dense
//! ids, so the stream is *prefix-stable*: asking for 1 000 flows or
//! 1 000 000 yields the same first 1 000, bit for bit, and every
//! downstream digest stays reproducible.

use citymesh_fleet::{FlowKind, FlowSpec};
use citymesh_simcore::{substream_seed, SimRng};

use crate::engine::StreamError;

/// Sub-stream domain for per-candidate arrival gaps and thinning.
pub(crate) const DOMAIN_STREAM_ARRIVAL: u64 = 0xA77A;
/// Sub-stream domain for per-flow endpoint sampling.
pub(crate) const DOMAIN_STREAM_FLOW: u64 = 0xF70B;

/// A time-varying arrival-rate profile λ(t).
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals: λ(t) = `rate_hz`.
    Poisson {
        /// Mean arrival rate, flows per second.
        rate_hz: f64,
    },
    /// A smooth day/night cycle: λ(t) swings sinusoidally from
    /// `base_hz` (at t = 0) up to `peak_hz` half a period later and
    /// back.
    Diurnal {
        /// Trough arrival rate, flows per second.
        base_hz: f64,
        /// Crest arrival rate, flows per second.
        peak_hz: f64,
        /// Full cycle length, seconds.
        period_s: f64,
    },
    /// A flash crowd: steady `base_hz` background with a rectangular
    /// burst at `burst_hz` over `[burst_start_s, burst_start_s +
    /// burst_secs)` — the "everyone texts at once after the
    /// aftershock" overload spike.
    FlashCrowd {
        /// Background arrival rate, flows per second.
        base_hz: f64,
        /// In-burst arrival rate, flows per second.
        burst_hz: f64,
        /// Burst onset, seconds from stream start.
        burst_start_s: f64,
        /// Burst duration, seconds.
        burst_secs: f64,
    },
}

impl ArrivalProcess {
    /// A short stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::FlashCrowd { .. } => "flash-crowd",
        }
    }

    /// The instantaneous arrival rate λ(t), flows per second.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Diurnal {
                base_hz,
                peak_hz,
                period_s,
            } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                base_hz + (peak_hz - base_hz) * 0.5 * (1.0 - phase.cos())
            }
            ArrivalProcess::FlashCrowd {
                base_hz,
                burst_hz,
                burst_start_s,
                burst_secs,
            } => {
                if t_s >= burst_start_s && t_s < burst_start_s + burst_secs {
                    burst_hz
                } else {
                    base_hz
                }
            }
        }
    }

    /// The peak rate λ_max the thinning sampler proposes at.
    pub fn peak_rate_hz(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Diurnal { peak_hz, .. } => peak_hz,
            ArrivalProcess::FlashCrowd { burst_hz, .. } => burst_hz,
        }
    }

    /// Rejects degenerate profiles with a typed error. Every rate must
    /// be finite and positive (a zero background rate would make the
    /// thinning loop spin forever once the burst passes — a hang, not
    /// a panic), peaks must not dip below their base, and durations
    /// must be positive.
    pub fn validate(&self) -> Result<(), StreamError> {
        let check = |field: &'static str, value: f64| -> Result<(), StreamError> {
            if !value.is_finite() || value <= 0.0 {
                return Err(StreamError::InvalidArrivals { field, value });
            }
            Ok(())
        };
        match *self {
            ArrivalProcess::Poisson { rate_hz } => check("rate_hz", rate_hz),
            ArrivalProcess::Diurnal {
                base_hz,
                peak_hz,
                period_s,
            } => {
                check("base_hz", base_hz)?;
                check("peak_hz", peak_hz)?;
                check("period_s", period_s)?;
                if peak_hz < base_hz {
                    return Err(StreamError::InvalidArrivals {
                        field: "peak_hz (below base_hz)",
                        value: peak_hz,
                    });
                }
                Ok(())
            }
            ArrivalProcess::FlashCrowd {
                base_hz,
                burst_hz,
                burst_start_s,
                burst_secs,
            } => {
                check("base_hz", base_hz)?;
                check("burst_hz", burst_hz)?;
                check("burst_secs", burst_secs)?;
                if !burst_start_s.is_finite() || burst_start_s < 0.0 {
                    return Err(StreamError::InvalidArrivals {
                        field: "burst_start_s",
                        value: burst_start_s,
                    });
                }
                if burst_hz < base_hz {
                    return Err(StreamError::InvalidArrivals {
                        field: "burst_hz (below base_hz)",
                        value: burst_hz,
                    });
                }
                Ok(())
            }
        }
    }
}

/// A complete open-loop workload description: how many flows to
/// materialize and the arrival profile they follow. Endpoints are
/// uniform distinct pairs, each drawn from the flow's own sub-stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamWorkload {
    /// Number of flows to materialize from the (conceptually endless)
    /// stream.
    pub flows: usize,
    /// The arrival-rate profile.
    pub process: ArrivalProcess,
    /// Root seed; all stream randomness derives from it.
    pub seed: u64,
}

impl Default for StreamWorkload {
    fn default() -> Self {
        StreamWorkload {
            flows: 1000,
            process: ArrivalProcess::Poisson { rate_hz: 200.0 },
            seed: 0,
        }
    }
}

/// Materializes the next `cfg.flows` arrivals of the stream for a city
/// of `buildings` buildings.
///
/// # Panics
/// Panics on a rejected workload ([`ArrivalProcess::validate`], or
/// `buildings < 2`). Use [`try_generate_stream_flows`] for a `Result`.
pub fn generate_stream_flows(buildings: usize, cfg: &StreamWorkload) -> Vec<FlowSpec> {
    try_generate_stream_flows(buildings, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`generate_stream_flows`] with degenerate inputs as a typed error.
pub fn try_generate_stream_flows(
    buildings: usize,
    cfg: &StreamWorkload,
) -> Result<Vec<FlowSpec>, StreamError> {
    if buildings < 2 {
        return Err(StreamError::TooFewBuildings { buildings });
    }
    cfg.process.validate()?;
    let b = buildings as u64;
    let lambda_max = cfg.process.peak_rate_hz();

    let mut flows = Vec::with_capacity(cfg.flows);
    let mut t_s = 0.0_f64;
    let mut candidate = 0u64;
    while flows.len() < cfg.flows {
        // Candidate k's gap and thinning coin both come from its own
        // sub-stream, so the accepted prefix never moves when more
        // flows are requested.
        let mut rng = SimRng::new(substream_seed(cfg.seed, DOMAIN_STREAM_ARRIVAL, candidate));
        candidate += 1;
        t_s += -(1.0 - rng.uniform()).ln() / lambda_max;
        if rng.uniform() >= cfg.process.rate_at(t_s) / lambda_max {
            continue;
        }
        let id = flows.len() as u64;
        let mut frng = SimRng::new(substream_seed(cfg.seed, DOMAIN_STREAM_FLOW, id));
        let src = frng.below(b) as u32;
        let dst = distinct_dst(&mut frng, b, src);
        flows.push(FlowSpec {
            id,
            src,
            dst,
            kind: FlowKind::Data,
            arrival_ms: t_s * 1e3,
        });
    }
    Ok(flows)
}

/// Uniform destination ≠ `src` (the fleet workload's branch-free
/// shift-over-the-gap trick).
fn distinct_dst(rng: &mut SimRng, buildings: u64, src: u32) -> u32 {
    let d = rng.below(buildings - 1) as u32;
    if d >= src {
        d + 1
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(flows: usize, rate_hz: f64, seed: u64) -> Vec<FlowSpec> {
        generate_stream_flows(
            100,
            &StreamWorkload {
                flows,
                process: ArrivalProcess::Poisson { rate_hz },
                seed,
            },
        )
    }

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        for process in [
            ArrivalProcess::Poisson { rate_hz: 120.0 },
            ArrivalProcess::Diurnal {
                base_hz: 40.0,
                peak_hz: 200.0,
                period_s: 10.0,
            },
            ArrivalProcess::FlashCrowd {
                base_hz: 50.0,
                burst_hz: 500.0,
                burst_start_s: 2.0,
                burst_secs: 1.0,
            },
        ] {
            let mk = |flows| {
                generate_stream_flows(
                    64,
                    &StreamWorkload {
                        flows,
                        process,
                        seed: 11,
                    },
                )
            };
            let a = mk(300);
            let b = mk(300);
            assert_eq!(a, b, "{}", process.label());
            // The first 300 flows of a 900-flow stream are the same 300.
            let longer = mk(900);
            assert_eq!(a[..], longer[..300], "{}", process.label());
            for (i, f) in a.iter().enumerate() {
                assert_eq!(f.id, i as u64);
                assert_ne!(f.src, f.dst);
                assert!(f.src < 64 && f.dst < 64);
            }
            for w in a.windows(2) {
                assert!(w[0].arrival_ms <= w[1].arrival_ms);
            }
        }
    }

    #[test]
    fn poisson_interarrival_mean_and_cv_are_in_tolerance() {
        // 20k exponential gaps at 100 Hz: the sample mean must sit
        // within 5% of 10 ms and the coefficient of variation within
        // 5% of 1 (the exponential's signature).
        let flows = poisson(20_000, 100.0, 42);
        let gaps: Vec<f64> = flows
            .windows(2)
            .map(|w| w[1].arrival_ms - w[0].arrival_ms)
            .collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let cv = var.sqrt() / mean;
        assert!(
            (mean - 10.0).abs() < 0.5,
            "mean interarrival {mean} ms, want ~10 ms"
        );
        assert!((cv - 1.0).abs() < 0.05, "interarrival CV {cv}, want ~1");
    }

    #[test]
    fn flash_crowd_burst_shape_is_respected() {
        // 50 Hz background with a 10× burst over [5 s, 7 s): compare
        // arrival counts in the burst window against the two seconds
        // right before it.
        let flows = generate_stream_flows(
            100,
            &StreamWorkload {
                flows: 4000,
                process: ArrivalProcess::FlashCrowd {
                    base_hz: 50.0,
                    burst_hz: 500.0,
                    burst_start_s: 5.0,
                    burst_secs: 2.0,
                },
                seed: 7,
            },
        );
        let count_in = |lo_s: f64, hi_s: f64| {
            flows
                .iter()
                .filter(|f| f.arrival_ms >= lo_s * 1e3 && f.arrival_ms < hi_s * 1e3)
                .count() as f64
        };
        let before = count_in(3.0, 5.0);
        let during = count_in(5.0, 7.0);
        assert!(before > 0.0, "background must produce arrivals");
        let ratio = during / before;
        assert!(
            (ratio - 10.0).abs() < 3.0,
            "burst/background arrival ratio {ratio}, want ~10"
        );
        // Expected counts themselves: ~100 before, ~1000 during.
        assert!(
            (before - 100.0).abs() < 40.0,
            "pre-burst count {before}, want ~100"
        );
        assert!(
            (during - 1000.0).abs() < 120.0,
            "burst count {during}, want ~1000"
        );
    }

    #[test]
    fn diurnal_crest_outdraws_the_trough() {
        // One 20 s cycle from 20 Hz to 200 Hz: the middle half-period
        // (around the crest) must collect far more arrivals than the
        // first and last quarters (around the troughs).
        let flows = generate_stream_flows(
            100,
            &StreamWorkload {
                flows: 2200,
                process: ArrivalProcess::Diurnal {
                    base_hz: 20.0,
                    peak_hz: 200.0,
                    period_s: 20.0,
                },
                seed: 3,
            },
        );
        let in_window = |lo_s: f64, hi_s: f64| {
            flows
                .iter()
                .filter(|f| f.arrival_ms >= lo_s * 1e3 && f.arrival_ms < hi_s * 1e3)
                .count() as f64
        };
        let trough = in_window(0.0, 5.0) + in_window(15.0, 20.0);
        let crest = in_window(5.0, 15.0);
        assert!(
            crest > 2.5 * trough,
            "crest ({crest}) must clearly outdraw the troughs ({trough})"
        );
    }

    #[test]
    fn arrival_validation_types_every_rejection() {
        let gen = |process| {
            try_generate_stream_flows(
                10,
                &StreamWorkload {
                    flows: 5,
                    process,
                    seed: 0,
                },
            )
        };
        assert!(matches!(
            try_generate_stream_flows(1, &StreamWorkload::default()),
            Err(StreamError::TooFewBuildings { buildings: 1 })
        ));
        // Zero / negative / non-finite rates.
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                gen(ArrivalProcess::Poisson { rate_hz: bad }),
                Err(StreamError::InvalidArrivals {
                    field: "rate_hz",
                    ..
                })
            ));
        }
        // A flash crowd whose background dies after the burst would
        // hang the thinning loop; it must be rejected up front.
        assert!(matches!(
            gen(ArrivalProcess::FlashCrowd {
                base_hz: 0.0,
                burst_hz: 100.0,
                burst_start_s: 1.0,
                burst_secs: 1.0,
            }),
            Err(StreamError::InvalidArrivals {
                field: "base_hz",
                ..
            })
        ));
        // Peaks below their base invert the thinning bound.
        assert!(gen(ArrivalProcess::Diurnal {
            base_hz: 100.0,
            peak_hz: 50.0,
            period_s: 10.0,
        })
        .is_err());
        assert!(gen(ArrivalProcess::FlashCrowd {
            base_hz: 100.0,
            burst_hz: 50.0,
            burst_start_s: 1.0,
            burst_secs: 1.0,
        })
        .is_err());
        // Negative burst onset.
        assert!(matches!(
            gen(ArrivalProcess::FlashCrowd {
                base_hz: 10.0,
                burst_hz: 100.0,
                burst_start_s: -2.0,
                burst_secs: 1.0,
            }),
            Err(StreamError::InvalidArrivals {
                field: "burst_start_s",
                ..
            })
        ));
        // And a valid profile generates.
        assert_eq!(
            gen(ArrivalProcess::Poisson { rate_hz: 10.0 })
                .unwrap()
                .len(),
            5
        );
    }
}
