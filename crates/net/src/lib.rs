//! CityMesh wire format.
//!
//! A CityMesh packet carries its *entire* routing state in the header:
//! the compressed building route (a sequence of waypoint building IDs,
//! paper §3 step 2) plus the conduit width. Relaying APs make the
//! rebroadcast decision from the header and their cached city map
//! alone — no per-flow or per-neighbor state exists anywhere in the
//! network, which is the property that lets CityMesh scale to millions
//! of nodes.
//!
//! Layout goals, in order:
//!
//! 1. **Small route encoding.** The paper reports a median compressed
//!    source-route of 175 bits and a 90th percentile of 225 bits. We
//!    bit-pack waypoint IDs at `⌈log₂(max_id+1)⌉` bits each
//!    ([`RouteEncoding::Absolute`]) and also provide a delta/zigzag
//!    varint mode ([`RouteEncoding::Delta`]) evaluated as an ablation.
//! 2. **Self-contained integrity.** A CRC-32C trailer detects
//!    corruption on the lossy broadcast medium; end-to-end authenticity
//!    is layered above by `citymesh-crypto` sealed messages.
//! 3. **Forward compatibility.** A 4-bit version plus reserved flag
//!    bits; decoders reject unknown versions loudly.
//!
//! Submodules: [`bitio`] (bit-level codec), [`varint`] (LEB128),
//! [`crc`] (CRC-32C), [`header`] (the CityMesh header), [`packet`]
//! (framing + payload).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod crc;
pub mod fragment;
pub mod header;
pub mod packet;
pub mod varint;

pub use bitio::{BitReader, BitWriter};
pub use crc::crc32c;
pub use fragment::{fragment, Fragment, Reassembler};
pub use header::{CityMeshHeader, MessageKind, RouteEncoding, MAX_CONDUIT_WIDTH_M};
pub use packet::{Packet, MAX_PAYLOAD_LEN};

/// Errors produced while decoding CityMesh frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Version field is not one this decoder understands.
    UnsupportedVersion(u8),
    /// The CRC-32C trailer did not match the frame contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        stored: u32,
    },
    /// A length or count field exceeds protocol limits.
    FieldOverflow(&'static str),
    /// A varint ran past its maximum encoded length.
    VarintOverflow,
    /// Unknown message kind discriminant.
    UnknownKind(u8),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated => write!(f, "frame truncated"),
            NetError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            NetError::BadChecksum { computed, stored } => {
                write!(
                    f,
                    "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}"
                )
            }
            NetError::FieldOverflow(what) => write!(f, "field overflow: {what}"),
            NetError::VarintOverflow => write!(f, "varint overflow"),
            NetError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for NetError {}
