//! LEB128 unsigned varints and zigzag signed varints.
//!
//! Used by the delta route encoding (consecutive waypoint IDs are
//! usually numerically close when buildings are ID'd in spatial order)
//! and by the packet framing for payload lengths.

use crate::NetError;

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`; returns the number
/// of bytes written (1–10).
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out.len() - start
}

/// Decodes a LEB128 `u64` from the front of `input`; returns the value
/// and the number of bytes consumed.
pub fn decode_u64(input: &[u8]) -> Result<(u64, usize), NetError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(NetError::VarintOverflow);
        }
        let low = (byte & 0x7F) as u64;
        // The 10th byte may only contribute the final bit of a u64.
        if shift == 63 && low > 1 {
            return Err(NetError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(NetError::Truncated)
}

/// Zigzag-maps a signed value so small magnitudes encode small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag varint.
pub fn encode_i64(value: i64, out: &mut Vec<u8>) -> usize {
    encode_u64(zigzag(value), out)
}

/// Decodes a zigzag varint.
pub fn decode_i64(input: &[u8]) -> Result<(i64, usize), NetError> {
    decode_u64(input).map(|(v, n)| (unzigzag(v), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        let cases: &[(u64, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7F]),
            (128, &[0x80, 0x01]),
            (300, &[0xAC, 0x02]),
            (
                u64::MAX,
                &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01],
            ),
        ];
        for (value, bytes) in cases {
            let mut out = Vec::new();
            let n = encode_u64(*value, &mut out);
            assert_eq!(&out, bytes, "encode {value}");
            assert_eq!(n, bytes.len());
            let (back, used) = decode_u64(&out).unwrap();
            assert_eq!(back, *value, "decode {value}");
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn round_trip_exhaustive_boundaries() {
        for shift in 0..64 {
            for delta in [-1i128, 0, 1] {
                let v = (1i128 << shift) + delta;
                if !(0..=u64::MAX as i128).contains(&v) {
                    continue;
                }
                let v = v as u64;
                let mut out = Vec::new();
                encode_u64(v, &mut out);
                assert_eq!(decode_u64(&out).unwrap().0, v);
            }
        }
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(decode_u64(&[]), Err(NetError::Truncated));
        assert_eq!(decode_u64(&[0x80]), Err(NetError::Truncated));
        assert_eq!(decode_u64(&[0x80, 0x80]), Err(NetError::Truncated));
    }

    #[test]
    fn overlong_input_errors() {
        // 11 continuation bytes.
        let bad = [0x80u8; 11];
        assert_eq!(decode_u64(&bad), Err(NetError::VarintOverflow));
        // 10 bytes but the last contributes bits beyond 64.
        let mut too_big = [0xFFu8; 10];
        too_big[9] = 0x02;
        assert_eq!(decode_u64(&too_big), Err(NetError::VarintOverflow));
    }

    #[test]
    fn trailing_bytes_ignored() {
        let input = [0x05, 0xAA, 0xBB];
        let (v, n) = decode_u64(&input).unwrap();
        assert_eq!(v, 5);
        assert_eq!(n, 1);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-1000i64, -3, 0, 7, 123456, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [-5_000_000i64, -128, -1, 0, 1, 127, 1 << 40] {
            let mut out = Vec::new();
            encode_i64(v, &mut out);
            let (back, _) = decode_i64(&out).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn small_deltas_encode_in_one_byte() {
        // The property the delta route encoding relies on.
        for v in -63i64..=63 {
            let mut out = Vec::new();
            assert_eq!(encode_i64(v, &mut out), 1, "delta {v}");
        }
    }
}
