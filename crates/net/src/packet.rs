//! Packet framing: header + payload + CRC trailer.

use bytes::{BufMut, Bytes, BytesMut};

use crate::bitio::{BitReader, BitWriter};
use crate::crc::crc32c;
use crate::header::CityMeshHeader;
use crate::{varint, NetError};

/// Maximum payload length, bytes.
///
/// Chosen so a worst-case frame (maximal header + payload + trailer)
/// stays under a single 802.11 MSDU (2304 bytes) — CityMesh never
/// relies on link-layer fragmentation.
pub const MAX_PAYLOAD_LEN: usize = 1400;

/// A complete CityMesh frame.
///
/// ```
/// use bytes::Bytes;
/// use citymesh_net::{CityMeshHeader, Packet};
///
/// // Route through waypoint buildings 17 → 404 → 31, conduit W = 50 m.
/// let header = CityMeshHeader::new(0xC0FFEE, 50.0, vec![17, 404, 31]);
/// let packet = Packet::new(header, Bytes::from_static(b"sealed payload"));
/// let wire = packet.encode().unwrap();
/// assert_eq!(Packet::decode(&wire).unwrap(), packet);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Routing header.
    pub header: CityMeshHeader,
    /// Opaque payload — typically a `citymesh-crypto` sealed message.
    pub payload: Bytes,
}

impl Packet {
    /// Creates a frame.
    ///
    /// # Panics
    /// Panics when the payload exceeds [`MAX_PAYLOAD_LEN`]; senders
    /// are expected to fragment at the application layer.
    pub fn new(header: CityMeshHeader, payload: Bytes) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD_LEN,
            "payload {} bytes exceeds MAX_PAYLOAD_LEN",
            payload.len()
        );
        Packet { header, payload }
    }

    /// Serializes to wire bytes:
    /// `header (bit-packed, byte-aligned) ‖ payload_len varint ‖
    /// payload ‖ crc32c (4 bytes, big-endian)` where the CRC covers
    /// everything before it.
    pub fn encode(&self) -> Result<Bytes, NetError> {
        let mut w = BitWriter::new();
        self.header.encode(&mut w)?;
        w.align();
        let mut buf = w.into_bytes();
        varint::encode_u64(self.payload.len() as u64, &mut buf);
        buf.extend_from_slice(&self.payload);
        let crc = crc32c(&buf);
        let mut out = BytesMut::with_capacity(buf.len() + 4);
        out.put_slice(&buf);
        out.put_u32(crc);
        Ok(out.freeze())
    }

    /// Parses wire bytes produced by [`Packet::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Packet, NetError> {
        if bytes.len() < 4 {
            return Err(NetError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_be_bytes(trailer.try_into().expect("4 bytes"));
        let computed = crc32c(body);
        if stored != computed {
            return Err(NetError::BadChecksum { computed, stored });
        }
        let mut r = BitReader::new(body);
        let header = CityMeshHeader::decode(&mut r)?;
        let rest = r.rest();
        let (len, used) = varint::decode_u64(rest)?;
        let len = len as usize;
        if len > MAX_PAYLOAD_LEN {
            return Err(NetError::FieldOverflow("payload length"));
        }
        let payload_bytes = &rest[used..];
        if payload_bytes.len() < len {
            return Err(NetError::Truncated);
        }
        // Trailing slack after the declared payload is tolerated: some
        // link layers pad frames to minimum sizes.
        let payload = Bytes::copy_from_slice(&payload_bytes[..len]);
        Ok(Packet { header, payload })
    }

    /// Total wire size in bytes for this frame.
    pub fn wire_len(&self) -> usize {
        let header_bytes = self.header.total_bits().div_ceil(8);
        let mut len_buf = Vec::new();
        varint::encode_u64(self.payload.len() as u64, &mut len_buf);
        header_bytes + len_buf.len() + self.payload.len() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{MessageKind, RouteEncoding};

    fn sample_header() -> CityMeshHeader {
        CityMeshHeader::new(0xABCD_EF01_2345_6789, 50.0, vec![17, 404, 9000, 31])
    }

    #[test]
    fn round_trip_with_payload() {
        let p = Packet::new(sample_header(), Bytes::from_static(b"hello, bob"));
        let wire = p.encode().unwrap();
        assert_eq!(wire.len(), p.wire_len());
        let back = Packet::decode(&wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn round_trip_empty_payload() {
        let p = Packet::new(sample_header(), Bytes::new());
        let back = Packet::decode(&p.encode().unwrap()).unwrap();
        assert_eq!(back.payload.len(), 0);
        assert_eq!(back.header, p.header);
    }

    #[test]
    fn round_trip_max_payload() {
        let p = Packet::new(sample_header(), Bytes::from(vec![0x5A; MAX_PAYLOAD_LEN]));
        let back = Packet::decode(&p.encode().unwrap()).unwrap();
        assert_eq!(back.payload.len(), MAX_PAYLOAD_LEN);
    }

    #[test]
    #[should_panic(expected = "MAX_PAYLOAD_LEN")]
    fn oversized_payload_panics() {
        Packet::new(sample_header(), Bytes::from(vec![0; MAX_PAYLOAD_LEN + 1]));
    }

    #[test]
    fn corruption_detected_everywhere() {
        let p = Packet::new(sample_header(), Bytes::from_static(b"integrity matters"));
        let wire = p.encode().unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x01;
            let res = Packet::decode(&bad);
            assert!(res.is_err(), "flip at byte {i} must be detected");
        }
    }

    #[test]
    fn truncation_detected() {
        let p = Packet::new(sample_header(), Bytes::from_static(b"data"));
        let wire = p.encode().unwrap();
        for cut in 0..wire.len() {
            assert!(Packet::decode(&wire[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_padding_tolerated() {
        // Padding must be accounted for *inside* the CRC, as a link
        // layer would recompute it; emulate by re-encoding manually.
        let p = Packet::new(sample_header(), Bytes::from_static(b"padded"));
        let wire = p.encode().unwrap();
        let (body, _) = wire.split_at(wire.len() - 4);
        let mut padded = body.to_vec();
        padded.extend_from_slice(&[0u8; 16]);
        let crc = crc32c(&padded);
        padded.extend_from_slice(&crc.to_be_bytes());
        let back = Packet::decode(&padded).unwrap();
        assert_eq!(back.payload, p.payload);
    }

    #[test]
    fn delta_encoded_header_survives_framing() {
        let mut h = sample_header();
        h.encoding = RouteEncoding::Delta;
        h.kind = MessageKind::Ack;
        let p = Packet::new(h, Bytes::from_static(b"ack"));
        let back = Packet::decode(&p.encode().unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn binary_payload_with_all_byte_values() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let p = Packet::new(sample_header(), Bytes::from(payload.clone()));
        let back = Packet::decode(&p.encode().unwrap()).unwrap();
        assert_eq!(back.payload.as_ref(), payload.as_slice());
    }
}
