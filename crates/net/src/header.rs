//! The CityMesh packet header.
//!
//! The header is the entire routing state of a packet. Relaying APs
//! decode it, reconstruct the conduits between consecutive waypoint
//! buildings from their cached map, and rebroadcast iff they sit
//! inside one (paper §3 step 3).
//!
//! Bit layout (MSB-first):
//!
//! ```text
//! version:4  kind:4  ttl:8  msg_id:64  conduit_width_dm:10  enc:1
//! if enc == 0 (absolute):  id_bits:6  count:8  count × id_bits
//! if enc == 1 (delta):     count:8    first id then zigzag deltas,
//!                          each as nibble-group varbits (5 bits/group)
//! ```
//!
//! The *route bits* metric reported by the paper (median 175, 90%ile
//! 225) covers the route description: conduit width, encoding flag,
//! and the waypoint list. [`CityMeshHeader::route_bits`] measures
//! exactly that span.

use crate::bitio::{BitReader, BitWriter};
use crate::NetError;

/// Protocol version emitted by this implementation.
pub const VERSION: u8 = 1;

/// Maximum number of waypoints a route may carry (8-bit count).
pub const MAX_WAYPOINTS: usize = 255;

/// Largest conduit width the 10-bit decimeter field can encode,
/// meters. Senders that widen conduits for retries clamp to this.
pub const MAX_CONDUIT_WIDTH_M: f64 = 102.3;

/// What the packet payload means to the receiving postbox.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Application data destined for a postbox.
    Data,
    /// A device polling its postbox for cached messages (§3 step 4).
    PostboxCheckin,
    /// A push notification forwarded toward a device's last known
    /// location (§3 step 4).
    PushNotify,
    /// End-to-end delivery acknowledgment travelling the reverse route.
    Ack,
}

impl MessageKind {
    fn to_bits(self) -> u64 {
        match self {
            MessageKind::Data => 0,
            MessageKind::PostboxCheckin => 1,
            MessageKind::PushNotify => 2,
            MessageKind::Ack => 3,
        }
    }

    fn from_bits(v: u64) -> Result<Self, NetError> {
        match v {
            0 => Ok(MessageKind::Data),
            1 => Ok(MessageKind::PostboxCheckin),
            2 => Ok(MessageKind::PushNotify),
            3 => Ok(MessageKind::Ack),
            other => Err(NetError::UnknownKind(other as u8)),
        }
    }
}

/// How the waypoint list is packed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RouteEncoding {
    /// Fixed-width IDs at `⌈log₂(max_id + 1)⌉` bits each. Predictable
    /// size; the paper's headline numbers correspond to this mode.
    #[default]
    Absolute,
    /// First ID then zigzag deltas in 5-bit varbit groups. Smaller when
    /// building IDs are assigned in spatial order (neighbors get nearby
    /// IDs); evaluated as an ablation.
    Delta,
}

/// A decoded CityMesh header.
#[derive(Clone, Debug, PartialEq)]
pub struct CityMeshHeader {
    /// Message kind.
    pub kind: MessageKind,
    /// Remaining rebroadcast generations; relays decrement and drop at
    /// zero. Bounds damage from map disagreement loops.
    pub ttl: u8,
    /// Unique message ID; relays suppress duplicates by it.
    pub msg_id: u64,
    /// Conduit width in decimeters (the paper's `W`; 500 ⇒ 50 m).
    pub conduit_width_dm: u16,
    /// Waypoint building IDs, source building first, destination
    /// (postbox) building last. Never empty.
    pub waypoints: Vec<u32>,
    /// Waypoint list packing.
    pub encoding: RouteEncoding,
}

impl CityMeshHeader {
    /// Convenience constructor with the defaults used throughout the
    /// evaluation: kind `Data`, TTL 64, absolute encoding.
    ///
    /// # Panics
    /// Panics on an empty waypoint list — a route always contains at
    /// least the destination building.
    pub fn new(msg_id: u64, conduit_width_m: f64, waypoints: Vec<u32>) -> Self {
        assert!(!waypoints.is_empty(), "a route needs at least one waypoint");
        let dm = (conduit_width_m * 10.0).round();
        assert!(
            (0.0..=1023.0).contains(&dm),
            "conduit width {conduit_width_m} m out of the encodable 0–102.3 m range"
        );
        CityMeshHeader {
            kind: MessageKind::Data,
            ttl: 64,
            msg_id,
            conduit_width_dm: dm as u16,
            waypoints,
            encoding: RouteEncoding::Absolute,
        }
    }

    /// Conduit width in meters.
    pub fn conduit_width_m(&self) -> f64 {
        self.conduit_width_dm as f64 / 10.0
    }

    /// Rewrites this header in place for a new message, producing the
    /// same state [`CityMeshHeader::new`] would, but **reusing the
    /// waypoint buffer** — the per-message path of a simulation kernel
    /// that sends millions of flows must not reallocate the route.
    ///
    /// # Panics
    /// Panics on an empty waypoint list or an unencodable width,
    /// exactly like [`CityMeshHeader::new`].
    pub fn reuse_for(&mut self, msg_id: u64, conduit_width_m: f64, waypoints: &[u32]) {
        assert!(!waypoints.is_empty(), "a route needs at least one waypoint");
        let dm = (conduit_width_m * 10.0).round();
        assert!(
            (0.0..=1023.0).contains(&dm),
            "conduit width {conduit_width_m} m out of the encodable 0–102.3 m range"
        );
        self.kind = MessageKind::Data;
        self.ttl = 64;
        self.msg_id = msg_id;
        self.conduit_width_dm = dm as u16;
        self.waypoints.clear();
        self.waypoints.extend_from_slice(waypoints);
        self.encoding = RouteEncoding::Absolute;
    }

    /// Destination (postbox) building: the final waypoint.
    pub fn destination(&self) -> u32 {
        *self.waypoints.last().expect("waypoints never empty")
    }

    /// Encodes into `w`.
    ///
    /// # Errors
    /// [`NetError::FieldOverflow`] when the waypoint list exceeds
    /// [`MAX_WAYPOINTS`].
    pub fn encode(&self, w: &mut BitWriter) -> Result<(), NetError> {
        if self.waypoints.is_empty() || self.waypoints.len() > MAX_WAYPOINTS {
            return Err(NetError::FieldOverflow("waypoint count"));
        }
        w.write_bits(VERSION as u64, 4);
        w.write_bits(self.kind.to_bits(), 4);
        w.write_bits(self.ttl as u64, 8);
        w.write_bits(self.msg_id, 64);
        w.write_bits(self.conduit_width_dm as u64, 10);
        match self.encoding {
            RouteEncoding::Absolute => {
                w.write_bit(false);
                let max = *self.waypoints.iter().max().expect("non-empty");
                let id_bits = bits_for(max);
                w.write_bits(id_bits as u64, 6);
                w.write_bits(self.waypoints.len() as u64, 8);
                for &wp in &self.waypoints {
                    w.write_bits(wp as u64, id_bits);
                }
            }
            RouteEncoding::Delta => {
                w.write_bit(true);
                w.write_bits(self.waypoints.len() as u64, 8);
                write_varbits(w, self.waypoints[0] as u64);
                for pair in self.waypoints.windows(2) {
                    let delta = pair[1] as i64 - pair[0] as i64;
                    write_varbits(w, zigzag32(delta));
                }
            }
        }
        Ok(())
    }

    /// Decodes from `r`, validating the version.
    pub fn decode(r: &mut BitReader<'_>) -> Result<Self, NetError> {
        let version = r.read_bits(4)? as u8;
        if version != VERSION {
            return Err(NetError::UnsupportedVersion(version));
        }
        let kind = MessageKind::from_bits(r.read_bits(4)?)?;
        let ttl = r.read_bits(8)? as u8;
        let msg_id = r.read_bits(64)?;
        let conduit_width_dm = r.read_bits(10)? as u16;
        let delta = r.read_bit()?;
        let (encoding, waypoints) = if !delta {
            let id_bits = r.read_bits(6)? as u32;
            if !(1..=32).contains(&id_bits) {
                return Err(NetError::FieldOverflow("id_bits"));
            }
            let count = r.read_bits(8)? as usize;
            if count == 0 {
                return Err(NetError::FieldOverflow("waypoint count"));
            }
            let mut wps = Vec::with_capacity(count);
            for _ in 0..count {
                wps.push(r.read_bits(id_bits)? as u32);
            }
            (RouteEncoding::Absolute, wps)
        } else {
            let count = r.read_bits(8)? as usize;
            if count == 0 {
                return Err(NetError::FieldOverflow("waypoint count"));
            }
            let first = read_varbits(r)?;
            if first > u32::MAX as u64 {
                return Err(NetError::FieldOverflow("waypoint id"));
            }
            let mut wps = Vec::with_capacity(count);
            wps.push(first as u32);
            let mut prev = first as i64;
            for _ in 1..count {
                let d = unzigzag32(read_varbits(r)?);
                let next = prev + d;
                if !(0..=u32::MAX as i64).contains(&next) {
                    return Err(NetError::FieldOverflow("waypoint id"));
                }
                wps.push(next as u32);
                prev = next;
            }
            (RouteEncoding::Delta, wps)
        };
        Ok(CityMeshHeader {
            kind,
            ttl,
            msg_id,
            conduit_width_dm,
            waypoints,
            encoding,
        })
    }

    /// Size, in bits, of the *route description* — conduit width,
    /// encoding flag, and waypoint list. This is the quantity the
    /// paper reports as "packet header for the compressed source
    /// route" (median 175, 90%ile 225 bits, §4).
    pub fn route_bits(&self) -> usize {
        let fixed = 10 + 1; // conduit width + encoding flag
        match self.encoding {
            RouteEncoding::Absolute => {
                let max = *self.waypoints.iter().max().expect("non-empty");
                fixed + 6 + 8 + self.waypoints.len() * bits_for(max) as usize
            }
            RouteEncoding::Delta => {
                let mut bits = fixed + 8 + varbits_len(self.waypoints[0] as u64);
                for pair in self.waypoints.windows(2) {
                    let delta = pair[1] as i64 - pair[0] as i64;
                    bits += varbits_len(zigzag32(delta));
                }
                bits
            }
        }
    }

    /// Total encoded header size in bits, including version, kind,
    /// TTL, and message ID.
    pub fn total_bits(&self) -> usize {
        4 + 4 + 8 + 64 + self.route_bits()
    }
}

/// Bits needed to represent `v` (at least 1).
fn bits_for(v: u32) -> u32 {
    (32 - v.leading_zeros()).max(1)
}

/// Zigzag for deltas that fit well inside i64 (|delta| < 2^32).
fn zigzag32(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag32(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes `v` as 5-bit groups: 1 continuation bit + 4 value bits,
/// little-end group first. Small deltas (< 16) cost 5 bits.
fn write_varbits(w: &mut BitWriter, mut v: u64) {
    loop {
        let nibble = v & 0xF;
        v >>= 4;
        w.write_bit(v != 0);
        w.write_bits(nibble, 4);
        if v == 0 {
            break;
        }
    }
}

fn read_varbits(r: &mut BitReader<'_>) -> Result<u64, NetError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let more = r.read_bit()?;
        let nibble = r.read_bits(4)?;
        if shift >= 64 {
            return Err(NetError::VarintOverflow);
        }
        v |= nibble << shift;
        if !more {
            return Ok(v);
        }
        shift += 4;
    }
}

/// Encoded size of [`write_varbits`] output, in bits.
fn varbits_len(v: u64) -> usize {
    let nibbles = (64 - v.leading_zeros() as usize).div_ceil(4);
    5 * nibbles.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(h: &CityMeshHeader) -> CityMeshHeader {
        let mut w = BitWriter::new();
        h.encode(&mut w).unwrap();
        assert_eq!(
            w.bit_len(),
            h.total_bits(),
            "total_bits must match actual encoding"
        );
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        CityMeshHeader::decode(&mut r).unwrap()
    }

    #[test]
    fn absolute_round_trip() {
        let h = CityMeshHeader::new(0xDEAD_BEEF_1234_5678, 50.0, vec![10, 500, 3, 99999]);
        assert_eq!(round_trip(&h), h);
    }

    #[test]
    fn delta_round_trip() {
        let mut h = CityMeshHeader::new(42, 25.5, vec![1000, 1003, 998, 1020, 7]);
        h.encoding = RouteEncoding::Delta;
        h.kind = MessageKind::PushNotify;
        h.ttl = 7;
        assert_eq!(round_trip(&h), h);
    }

    #[test]
    fn single_waypoint_route() {
        let h = CityMeshHeader::new(1, 50.0, vec![0]);
        let back = round_trip(&h);
        assert_eq!(back.waypoints, vec![0]);
        assert_eq!(back.destination(), 0);
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            MessageKind::Data,
            MessageKind::PostboxCheckin,
            MessageKind::PushNotify,
            MessageKind::Ack,
        ] {
            let mut h = CityMeshHeader::new(5, 50.0, vec![1, 2, 3]);
            h.kind = kind;
            assert_eq!(round_trip(&h).kind, kind);
        }
    }

    #[test]
    fn reuse_for_equals_new() {
        let mut reused = CityMeshHeader::new(1, 20.0, vec![9, 8, 7]);
        reused.ttl = 3;
        reused.kind = MessageKind::Ack;
        reused.encoding = RouteEncoding::Delta;
        reused.reuse_for(77, 50.0, &[4, 5]);
        assert_eq!(reused, CityMeshHeader::new(77, 50.0, vec![4, 5]));
        // Growing the route again also matches.
        reused.reuse_for(78, 12.3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(
            reused,
            CityMeshHeader::new(78, 12.3, vec![1, 2, 3, 4, 5, 6])
        );
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn reuse_for_rejects_empty_route() {
        let mut h = CityMeshHeader::new(1, 50.0, vec![1]);
        h.reuse_for(2, 50.0, &[]);
    }

    #[test]
    fn conduit_width_precision() {
        let h = CityMeshHeader::new(1, 50.0, vec![1]);
        assert_eq!(h.conduit_width_m(), 50.0);
        let h = CityMeshHeader::new(1, 12.3, vec![1]);
        assert!((h.conduit_width_m() - 12.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "conduit width")]
    fn oversized_conduit_width_panics() {
        CityMeshHeader::new(1, 200.0, vec![1]);
    }

    #[test]
    fn route_bits_in_papers_ballpark() {
        // ~20k buildings (15-bit IDs), 10 waypoints: the paper's
        // "typical city" regime. Median reported: 175 bits.
        let wps: Vec<u32> = (0..10).map(|i| 1000 + i * 137).collect();
        let h = CityMeshHeader::new(1, 50.0, wps);
        let bits = h.route_bits();
        assert!(
            (100..300).contains(&bits),
            "route bits {bits} should be within the paper's order of magnitude"
        );
    }

    #[test]
    fn delta_beats_absolute_for_spatially_local_ids() {
        let wps: Vec<u32> = vec![50_000, 50_012, 50_007, 50_031, 50_029, 50_040];
        let abs = CityMeshHeader::new(1, 50.0, wps.clone());
        let mut del = abs.clone();
        del.encoding = RouteEncoding::Delta;
        assert!(
            del.route_bits() < abs.route_bits(),
            "delta ({}) should beat absolute ({}) on clustered IDs",
            del.route_bits(),
            abs.route_bits()
        );
        assert_eq!(round_trip(&del), del);
    }

    #[test]
    fn wrong_version_rejected() {
        let h = CityMeshHeader::new(9, 50.0, vec![1, 2]);
        let mut w = BitWriter::new();
        h.encode(&mut w).unwrap();
        let mut bytes = w.into_bytes();
        bytes[0] = (bytes[0] & 0x0F) | 0x20; // version := 2
        let mut r = BitReader::new(&bytes);
        assert_eq!(
            CityMeshHeader::decode(&mut r),
            Err(NetError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn truncated_header_rejected() {
        let h = CityMeshHeader::new(9, 50.0, vec![1, 2, 3, 4, 5]);
        let mut w = BitWriter::new();
        h.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() - 1 {
            let mut r = BitReader::new(&bytes[..cut]);
            assert!(
                CityMeshHeader::decode(&mut r).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn too_many_waypoints_rejected() {
        let h = CityMeshHeader::new(1, 50.0, (0..300u32).collect());
        let mut w = BitWriter::new();
        assert_eq!(
            h.encode(&mut w),
            Err(NetError::FieldOverflow("waypoint count"))
        );
    }

    #[test]
    fn max_u32_waypoint_ids() {
        let h = CityMeshHeader::new(1, 50.0, vec![u32::MAX, 0, u32::MAX - 1]);
        assert_eq!(round_trip(&h), h);
        let mut d = h.clone();
        d.encoding = RouteEncoding::Delta;
        assert_eq!(round_trip(&d), d);
    }

    #[test]
    fn varbits_small_values_five_bits() {
        let mut w = BitWriter::new();
        write_varbits(&mut w, 15);
        assert_eq!(w.bit_len(), 5);
        assert_eq!(varbits_len(15), 5);
        let mut w2 = BitWriter::new();
        write_varbits(&mut w2, 16);
        assert_eq!(w2.bit_len(), 10);
        assert_eq!(varbits_len(16), 10);
        assert_eq!(varbits_len(0), 5);
    }
}
