//! CRC-32C (Castagnoli), table-driven.
//!
//! Castagnoli rather than CRC-32/ISO-HDLC for its better Hamming
//! distance at the frame sizes CityMesh uses (≤ ~1.5 KiB); it is the
//! same polynomial iSCSI and ext4 chose for the same reason.

/// The CRC-32C polynomial, reversed representation.
const POLY: u32 = 0x82F6_3B78;

/// Lookup table generated at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed `state` from a previous call (start from
/// `0xFFFF_FFFF` and finalize by XOR with `0xFFFF_FFFF`).
pub fn crc32c_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3720_test_vectors() {
        // Test vectors from RFC 3720 §B.4 (iSCSI CRC32C).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn classic_check_value() {
        // The standard "123456789" check value for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let mut state = 0xFFFF_FFFF;
            state = crc32c_update(state, &data[..split]);
            state = crc32c_update(state, &data[split..]);
            assert_eq!(state ^ 0xFFFF_FFFF, crc32c(data), "split={split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"citymesh packet payload".to_vec();
        let reference = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
