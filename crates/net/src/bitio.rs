//! MSB-first bit-level reader/writer.
//!
//! The compressed source route packs building IDs at arbitrary bit
//! widths (paper §4 reports header sizes in *bits*), so the codec
//! works below byte granularity. Bits fill each byte from the most
//! significant end — the conventional network order for bit fields.

use crate::NetError;

/// Accumulates bits into a byte vector.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 ⇒ byte-aligned).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the `width` low bits of `value`, MSB first.
    ///
    /// # Panics
    /// Panics when `width > 64` or `value` has bits above `width`
    /// (callers must mask explicitly — a silent mask would hide
    /// encoding bugs like an ID wider than the negotiated width).
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value:#x} does not fit in {width} bits"
        );
        let mut remaining = width;
        while remaining > 0 {
            if self.used == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.used as u32;
            let take = free.min(remaining);
            let chunk = ((value >> (remaining - take)) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= chunk << (free - take);
            self.used = ((self.used as u32 + take) % 8) as u8;
            remaining -= take;
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        self.used = 0;
    }

    /// Total bits written so far (excluding alignment padding to come).
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finishes and returns the padded byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits from a byte slice, MSB first.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Bit cursor from the start of the slice.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads the next `width` bits as the low bits of a `u64`.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, NetError> {
        assert!(width <= 64, "width {width} > 64");
        if self.pos + width as usize > self.bytes.len() * 8 {
            return Err(NetError::Truncated);
        }
        let mut out = 0u64;
        let mut remaining = width;
        while remaining > 0 {
            let byte = self.bytes[self.pos / 8];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Result<bool, NetError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Bits left in the input.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// The unread remainder as a byte slice (after aligning).
    pub fn rest(mut self) -> &'a [u8] {
        self.align();
        &self.bytes[self.pos / 8..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_byte_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b01, 2);
        w.write_bits(0b110, 3);
        assert_eq!(w.bit_len(), 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_1110]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(2).unwrap(), 0b01);
        assert_eq!(r.read_bits(3).unwrap(), 0b110);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn cross_byte_values() {
        let mut w = BitWriter::new();
        w.write_bits(0x1FF, 9); // spans two bytes
        w.write_bits(0x3, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(9).unwrap(), 0x1FF);
        assert_eq!(r.read_bits(2).unwrap(), 0x3);
    }

    #[test]
    fn full_width_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }

    #[test]
    fn zero_width_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align();
        w.write_bits(0xAB, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        r.align();
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn truncated_read_errors() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(6).unwrap(), 0b111111);
        assert_eq!(r.read_bits(3), Err(NetError::Truncated));
        // The failed read consumed nothing.
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn rest_returns_unread_tail() {
        let bytes = [0xAA, 0xBB, 0xCC];
        let mut r = BitReader::new(&bytes);
        r.read_bits(4).unwrap();
        assert_eq!(r.rest(), &[0xBB, 0xCC]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut w = BitWriter::new();
        w.write_bits(0b100, 2);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0x7F, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random widths/values.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w = BitWriter::new();
        let mut expected = Vec::new();
        for _ in 0..500 {
            let width = (next() % 64 + 1) as u32;
            let value = if width == 64 {
                next()
            } else {
                next() & ((1u64 << width) - 1)
            };
            w.write_bits(value, width);
            expected.push((value, width));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (value, width) in expected {
            assert_eq!(r.read_bits(width).unwrap(), value);
        }
    }
}
