//! Application-layer fragmentation and reassembly.
//!
//! A CityMesh frame carries at most [`crate::MAX_PAYLOAD_LEN`] bytes
//! so it never relies on link-layer fragmentation. Larger application
//! messages (a photo of a missing-person poster, a map diff) are split
//! into numbered fragments that share the message's ID; the postbox
//! reassembles. The format is deliberately dumb — out-of-order arrival
//! and duplicates are the norm on a flooding mesh, retransmission
//! policy lives above.
//!
//! Fragment layout (prepended to each payload):
//!
//! ```text
//! index varint ‖ total varint ‖ data
//! ```
//!
//! `total` is repeated in every fragment so reassembly can size its
//! buffer from whichever fragment arrives first.

use crate::{varint, NetError};

/// Hard cap on fragments per message: 64 MiB-ish upper bound on
/// message size, far beyond anything a fallback mesh should carry, but
/// a guard against hostile `total` values allocating unbounded memory.
pub const MAX_FRAGMENTS: usize = 1 << 16;

/// A single fragment of a larger message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Position of this fragment (0-based).
    pub index: u32,
    /// Total number of fragments in the message.
    pub total: u32,
    /// The data slice carried by this fragment.
    pub data: Vec<u8>,
}

impl Fragment {
    /// Serializes to `index ‖ total ‖ data`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 10);
        varint::encode_u64(self.index as u64, &mut out);
        varint::encode_u64(self.total as u64, &mut out);
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a serialized fragment.
    pub fn decode(bytes: &[u8]) -> Result<Fragment, NetError> {
        let (index, n1) = varint::decode_u64(bytes)?;
        let (total, n2) = varint::decode_u64(&bytes[n1..])?;
        if total == 0 || total > MAX_FRAGMENTS as u64 {
            return Err(NetError::FieldOverflow("fragment total"));
        }
        if index >= total {
            return Err(NetError::FieldOverflow("fragment index"));
        }
        Ok(Fragment {
            index: index as u32,
            total: total as u32,
            data: bytes[n1 + n2..].to_vec(),
        })
    }
}

/// Splits `message` into fragments of at most `chunk_len` data bytes.
///
/// Empty messages produce a single empty fragment (so "message
/// exists" survives the trip).
///
/// # Panics
/// Panics when `chunk_len == 0` or the message would exceed
/// [`MAX_FRAGMENTS`].
pub fn fragment(message: &[u8], chunk_len: usize) -> Vec<Fragment> {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let total = message.len().div_ceil(chunk_len).max(1);
    assert!(
        total <= MAX_FRAGMENTS,
        "message needs {total} fragments (max {MAX_FRAGMENTS})"
    );
    (0..total)
        .map(|i| Fragment {
            index: i as u32,
            total: total as u32,
            data: message[i * chunk_len..((i + 1) * chunk_len).min(message.len())].to_vec(),
        })
        .collect()
}

/// Incremental reassembly buffer for one message.
///
/// ```
/// use citymesh_net::fragment::{fragment, Reassembler};
///
/// let photo = vec![7u8; 3000];
/// let mut r = Reassembler::new();
/// for frag in fragment(&photo, 1400) {
///     r.accept(frag).unwrap();
/// }
/// assert_eq!(r.finish().unwrap(), photo);
/// ```
#[derive(Clone, Debug)]
pub struct Reassembler {
    total: Option<u32>,
    parts: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Reassembler {
            total: None,
            parts: Vec::new(),
            received: 0,
        }
    }

    /// Accepts one fragment. Duplicates are ignored; fragments whose
    /// `total` disagrees with previously seen ones are rejected
    /// (either corruption or a colliding message ID).
    pub fn accept(&mut self, frag: Fragment) -> Result<(), NetError> {
        match self.total {
            None => {
                self.total = Some(frag.total);
                self.parts = vec![None; frag.total as usize];
            }
            Some(t) if t != frag.total => {
                return Err(NetError::FieldOverflow("fragment total mismatch"));
            }
            Some(_) => {}
        }
        let slot = &mut self.parts[frag.index as usize];
        if slot.is_none() {
            *slot = Some(frag.data);
            self.received += 1;
        }
        Ok(())
    }

    /// Fragments still missing (`None` before the first fragment).
    pub fn missing(&self) -> Option<usize> {
        self.total.map(|t| t as usize - self.received)
    }

    /// Whether all fragments have arrived.
    pub fn is_complete(&self) -> bool {
        self.missing() == Some(0)
    }

    /// Consumes the reassembler, yielding the message when complete.
    pub fn finish(self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::new();
        for part in self.parts {
            out.extend_from_slice(&part.expect("complete"));
        }
        Some(out)
    }
}

impl Default for Reassembler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_and_reassemble_in_order() {
        let msg: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let frags = fragment(&msg, 1000);
        assert_eq!(frags.len(), 3);
        let mut r = Reassembler::new();
        for f in frags {
            r.accept(f).unwrap();
        }
        assert!(r.is_complete());
        assert_eq!(r.finish().unwrap(), msg);
    }

    #[test]
    fn out_of_order_and_duplicates() {
        let msg = b"the quick brown fox jumps over the lazy dog".to_vec();
        let frags = fragment(&msg, 7);
        let mut r = Reassembler::new();
        // Reverse order, each delivered twice.
        for f in frags.iter().rev() {
            r.accept(f.clone()).unwrap();
            r.accept(f.clone()).unwrap();
        }
        assert_eq!(r.finish().unwrap(), msg);
    }

    #[test]
    fn exact_multiple_and_partial_tail() {
        assert_eq!(fragment(&[0u8; 100], 50).len(), 2);
        assert_eq!(fragment(&[0u8; 101], 50).len(), 3);
        let tail = fragment(&[9u8; 101], 50);
        assert_eq!(tail[2].data.len(), 1);
    }

    #[test]
    fn empty_message_single_empty_fragment() {
        let frags = fragment(&[], 100);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].data.is_empty());
        let mut r = Reassembler::new();
        r.accept(frags[0].clone()).unwrap();
        assert_eq!(r.finish().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wire_round_trip() {
        let frags = fragment(b"wire me", 3);
        for f in &frags {
            let wire = f.encode();
            assert_eq!(Fragment::decode(&wire).unwrap(), *f);
        }
    }

    #[test]
    fn decode_rejects_bad_headers() {
        // index ≥ total
        let mut bad = Vec::new();
        varint::encode_u64(5, &mut bad);
        varint::encode_u64(3, &mut bad);
        assert!(Fragment::decode(&bad).is_err());
        // total = 0
        let mut zero = Vec::new();
        varint::encode_u64(0, &mut zero);
        varint::encode_u64(0, &mut zero);
        assert!(Fragment::decode(&zero).is_err());
        // hostile total
        let mut huge = Vec::new();
        varint::encode_u64(0, &mut huge);
        varint::encode_u64(u64::MAX, &mut huge);
        assert_eq!(
            Fragment::decode(&huge).unwrap_err(),
            NetError::FieldOverflow("fragment total")
        );
        // truncated
        assert!(Fragment::decode(&[]).is_err());
    }

    #[test]
    fn mismatched_totals_rejected() {
        let mut r = Reassembler::new();
        r.accept(Fragment {
            index: 0,
            total: 2,
            data: vec![1],
        })
        .unwrap();
        let err = r
            .accept(Fragment {
                index: 1,
                total: 3,
                data: vec![2],
            })
            .unwrap_err();
        assert_eq!(err, NetError::FieldOverflow("fragment total mismatch"));
    }

    #[test]
    fn missing_tracks_progress() {
        let frags = fragment(&[0u8; 300], 100);
        let mut r = Reassembler::new();
        assert_eq!(r.missing(), None);
        r.accept(frags[1].clone()).unwrap();
        assert_eq!(r.missing(), Some(2));
        assert!(!r.is_complete());
        assert!(r.clone().finish().is_none());
        r.accept(frags[0].clone()).unwrap();
        r.accept(frags[2].clone()).unwrap();
        assert_eq!(r.missing(), Some(0));
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn zero_chunk_panics() {
        fragment(b"x", 0);
    }
}
