//! Property-based tests for the wire format.

use bytes::Bytes;
use citymesh_net::{
    bitio::{BitReader, BitWriter},
    varint, CityMeshHeader, MessageKind, Packet, RouteEncoding,
};
use proptest::prelude::*;

fn message_kind() -> impl Strategy<Value = MessageKind> {
    prop_oneof![
        Just(MessageKind::Data),
        Just(MessageKind::PostboxCheckin),
        Just(MessageKind::PushNotify),
        Just(MessageKind::Ack),
    ]
}

fn header() -> impl Strategy<Value = CityMeshHeader> {
    (
        any::<u64>(),
        0u16..=1023,
        proptest::collection::vec(any::<u32>(), 1..=255),
        message_kind(),
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(msg_id, width_dm, waypoints, kind, ttl, delta)| {
            let mut h = CityMeshHeader::new(msg_id, 0.0, waypoints);
            h.conduit_width_dm = width_dm;
            h.kind = kind;
            h.ttl = ttl;
            h.encoding = if delta {
                RouteEncoding::Delta
            } else {
                RouteEncoding::Absolute
            };
            h
        })
}

proptest! {
    #[test]
    fn bitio_round_trips(ops in proptest::collection::vec((any::<u64>(), 1u32..=64), 1..200)) {
        let mut w = BitWriter::new();
        let mut expected = Vec::new();
        for (value, width) in ops {
            let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            w.write_bits(masked, width);
            expected.push((masked, width));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (value, width) in expected {
            prop_assert_eq!(r.read_bits(width).unwrap(), value);
        }
    }

    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut out = Vec::new();
        let n = varint::encode_u64(v, &mut out);
        prop_assert!(n <= varint::MAX_VARINT_LEN);
        let (back, used) = varint::decode_u64(&out).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(used, n);
    }

    #[test]
    fn signed_varint_round_trips(v in any::<i64>()) {
        let mut out = Vec::new();
        varint::encode_i64(v, &mut out);
        let (back, _) = varint::decode_i64(&out).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn header_round_trips(h in header()) {
        let mut w = BitWriter::new();
        h.encode(&mut w).unwrap();
        prop_assert_eq!(w.bit_len(), h.total_bits());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let back = CityMeshHeader::decode(&mut r).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn packet_round_trips(h in header(), payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let p = Packet::new(h, Bytes::from(payload));
        let wire = p.encode().unwrap();
        prop_assert_eq!(wire.len(), p.wire_len());
        let back = Packet::decode(&wire).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any input must produce Ok or Err, never a panic.
        let _ = Packet::decode(&bytes);
    }

    #[test]
    fn single_bit_corruption_never_yields_same_packet(
        h in header(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip_hint in any::<usize>(),
    ) {
        let p = Packet::new(h, Bytes::from(payload));
        let wire = p.encode().unwrap();
        let mut bad = wire.to_vec();
        let byte = flip_hint % bad.len();
        bad[byte] ^= 1;
        match Packet::decode(&bad) {
            Err(_) => {}
            Ok(other) => prop_assert_ne!(other, p, "corruption produced an identical packet"),
        }
    }
}
