//! Property-based tests for the hierarchical planner's exactness.
//!
//! The district-overlay planner ([`HierPlanner`]) is an *exact*
//! optimization: on every city, healthy or faulted, it must find
//! routes of the same cost as the flat optimal planner. These
//! properties drive both planners over randomized small grid cities
//! and compare costs (with a 1e-9 relative tolerance — the two
//! planners sum the same weights in different orders), plus the
//! scratch-reuse and pipeline-level equivalences.

use std::collections::HashSet;

use citymesh_core::{
    plan_route, plan_route_avoiding, BuildingGraph, BuildingGraphParams, CityExperiment,
    ExperimentConfig, FaultScenario, HierParams, HierPlanScratch, HierPlanner, PlanScratch,
    PlannedFlow,
};
use citymesh_geo::{Point, Polygon, Rect};
use citymesh_map::CityMap;
use citymesh_simcore::SimRng;
use proptest::prelude::*;

/// A random small grid city: `cols × rows` buildings on a `pitch`
/// spacing with some randomly removed (removals create detours and
/// disconnected islands — exactly the cases that stress the overlay).
#[derive(Debug, Clone)]
struct GridCity {
    cols: usize,
    rows: usize,
    pitch: f64,
    removed_seed: u64,
    removal: f64,
}

fn grid_city() -> impl Strategy<Value = GridCity> {
    (
        3usize..10,
        3usize..10,
        25.0..45.0f64,
        any::<u64>(),
        0.0..0.3f64,
    )
        .prop_map(|(cols, rows, pitch, removed_seed, removal)| GridCity {
            cols,
            rows,
            pitch,
            removed_seed,
            removal,
        })
}

fn build_map(g: &GridCity) -> CityMap {
    let mut rng = SimRng::new(g.removed_seed);
    let mut footprints = Vec::new();
    for y in 0..g.rows {
        for x in 0..g.cols {
            if rng.chance(g.removal) {
                continue;
            }
            let ox = x as f64 * g.pitch;
            let oy = y as f64 * g.pitch;
            footprints.push(Polygon::rect(Rect::from_corners(
                Point::new(ox, oy),
                Point::new(ox + 12.0, oy + 12.0),
            )));
        }
    }
    if footprints.len() < 2 {
        footprints = vec![
            Polygon::rect(Rect::from_corners(
                Point::new(0.0, 0.0),
                Point::new(12.0, 12.0),
            )),
            Polygon::rect(Rect::from_corners(
                Point::new(30.0, 0.0),
                Point::new(42.0, 12.0),
            )),
        ];
    }
    CityMap::new("prop-grid", footprints, vec![])
}

/// Small districts so even these tiny cities exercise real overlay
/// searches instead of collapsing into one district.
fn hier_params() -> HierParams {
    HierParams {
        target_district_size: 12,
        ..HierParams::default()
    }
}

/// Cost of a route: sum over consecutive pairs of the cheapest
/// parallel edge between them. Panics if the route uses a non-edge.
fn route_cost(bg: &BuildingGraph, route: &[u32]) -> f64 {
    route
        .windows(2)
        .map(|w| {
            bg.graph()
                .neighbors(w[0])
                .iter()
                .filter(|e| e.to == w[1])
                .map(|e| e.weight)
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

fn costs_agree(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Healthy-city exactness: hier and flat agree on routability and
    /// on the optimal cost for every sampled pair.
    #[test]
    fn hier_cost_equals_flat_cost(g in grid_city(), pair_seed in any::<u64>()) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let planner = HierPlanner::build(&bg, &hier_params());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        for _ in 0..8 {
            let src = rng.below(n) as u32;
            let dst = rng.below(n) as u32;
            let flat = plan_route(&bg, src, dst);
            let hier = planner.plan_route(&bg, src, dst);
            match (flat, hier) {
                (Ok(f), Ok(h)) => {
                    let (fc, hc) = (route_cost(&bg, &f), route_cost(&bg, &h));
                    prop_assert!(
                        costs_agree(fc, hc),
                        "pair {src}->{dst}: flat cost {fc}, hier cost {hc}"
                    );
                    prop_assert_eq!(h[0], src);
                    prop_assert_eq!(*h.last().unwrap(), dst);
                }
                (Err(_), Err(_)) => {}
                (f, h) => prop_assert!(
                    false,
                    "routability disagreement at {src}->{dst}: flat {f:?}, hier {h:?}"
                ),
            }
        }
    }

    /// Faulted exactness: with a random blocked set, the hierarchical
    /// detour has the same cost as the flat optimal detour.
    #[test]
    fn hier_faulted_cost_equals_flat(g in grid_city(), pair_seed in any::<u64>(), block_p in 0.0..0.25f64) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let planner = HierPlanner::build(&bg, &hier_params());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        let blocked: HashSet<u32> = (0..n as u32)
            .filter(|&b| b != src && b != dst && rng.chance(block_p))
            .collect();
        let flat = plan_route_avoiding(&bg, src, dst, &blocked);
        let mut scratch = HierPlanScratch::new();
        let mut hier_route = Vec::new();
        let hier =
            planner.plan_route_avoiding_into(&bg, src, dst, &blocked, &mut scratch, &mut hier_route);
        match (flat, hier) {
            (Ok(f), Ok(())) => {
                for &b in &hier_route {
                    prop_assert!(
                        b == src || b == dst || !blocked.contains(&b),
                        "hier route crosses blocked building {b}"
                    );
                }
                let (fc, hc) = (route_cost(&bg, &f), route_cost(&bg, &hier_route));
                prop_assert!(
                    costs_agree(fc, hc),
                    "faulted pair {src}->{dst}: flat cost {fc}, hier cost {hc}"
                );
            }
            (Err(_), Err(_)) => {}
            (f, h) => prop_assert!(
                false,
                "faulted routability disagreement at {src}->{dst}: flat {f:?}, hier {h:?}"
            ),
        }
    }

    /// Scratch reuse is invisible: planning many pairs through one
    /// warm [`HierPlanScratch`] yields the same routes as a fresh
    /// scratch per pair.
    #[test]
    fn hier_scratch_reuse_matches_fresh(g in grid_city(), pair_seed in any::<u64>()) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let planner = HierPlanner::build(&bg, &hier_params());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let mut warm = HierPlanScratch::new();
        let mut warm_route = Vec::new();
        for _ in 0..8 {
            let src = rng.below(n) as u32;
            let dst = rng.below(n) as u32;
            let warm_ok = planner
                .plan_route_into(&bg, src, dst, &mut warm, &mut warm_route)
                .is_ok();
            let mut fresh = HierPlanScratch::new();
            let mut fresh_route = Vec::new();
            let fresh_ok = planner
                .plan_route_into(&bg, src, dst, &mut fresh, &mut fresh_route)
                .is_ok();
            prop_assert_eq!(warm_ok, fresh_ok, "routability differs warm vs fresh");
            prop_assert_eq!(&warm_route, &fresh_route, "route differs warm vs fresh");
        }
    }

    /// Pipeline equivalence: `plan_flow_hier_into` agrees with
    /// `plan_flow_into` on every route-independent artifact (the
    /// routes themselves are cost-equal by the properties above) —
    /// healthy and under injected faults.
    #[test]
    fn plan_flow_hier_matches_flat(g in grid_city(), pair_seed in any::<u64>(), faulted in any::<bool>()) {
        let map = build_map(&g);
        let cfg = ExperimentConfig {
            seed: pair_seed,
            faults: faulted.then(|| FaultScenario::iid(0.2)),
            ..ExperimentConfig::default()
        };
        let mut exp = CityExperiment::prepare(map, cfg);
        exp.enable_hier(&hier_params());
        let mut rng = SimRng::new(pair_seed ^ 0x9E37);
        let n = exp.map().len() as u64;
        let mut scratch = PlanScratch::new();
        for _ in 0..6 {
            let src = rng.below(n) as u32;
            let dst = rng.below(n) as u32;
            let mut flat = PlannedFlow::empty(src, dst);
            exp.plan_flow_into(src, dst, &mut scratch, &mut flat);
            let mut hier = PlannedFlow::empty(src, dst);
            exp.plan_flow_hier_into(src, dst, &mut scratch, &mut hier);
            prop_assert_eq!(flat.route_len > 0, hier.route_len > 0, "routability differs");
            prop_assert_eq!(flat.reachable, hier.reachable);
            prop_assert_eq!(flat.src_ap, hier.src_ap);
            prop_assert_eq!(flat.ideal_hops, hier.ideal_hops);
            if flat.route_len > 0 {
                // Exact waypoint equality is NOT asserted: on these
                // deliberately symmetric grids, distinct equal-cost
                // routes exist and the two planners may legitimately
                // pick different ones. (On the jittered archetype
                // geometry, where exact cost ties are measure-zero,
                // the fleet engine's hier-vs-flat digest equality test
                // shows the routes do coincide bit-for-bit.)
                prop_assert_eq!(flat.waypoints.first(), hier.waypoints.first());
                prop_assert_eq!(flat.waypoints.last(), hier.waypoints.last());
            }
        }
    }
}
