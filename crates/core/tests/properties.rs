//! Property-based tests for the core routing invariants.

use citymesh_core::{
    compress_route, place_aps, plan_route, reconstruct_conduits, within_conduits, BuildingGraph,
    BuildingGraphParams, CityExperiment, DeliveryScratch, ExperimentConfig, FaultScenario,
    PlanScratch, PlannedFlow,
};
use citymesh_geo::{Point, Polygon, Rect};
use citymesh_map::CityMap;
use citymesh_net::{BitReader, BitWriter, CityMeshHeader};
use citymesh_simcore::SimRng;
use proptest::prelude::*;

/// A random small grid city: `cols × rows` buildings on a `pitch`
/// spacing with some randomly removed.
#[derive(Debug, Clone)]
struct GridCity {
    cols: usize,
    rows: usize,
    pitch: f64,
    removed_seed: u64,
    removal: f64,
}

fn grid_city() -> impl Strategy<Value = GridCity> {
    (
        3usize..10,
        3usize..10,
        25.0..45.0f64,
        any::<u64>(),
        0.0..0.3f64,
    )
        .prop_map(|(cols, rows, pitch, removed_seed, removal)| GridCity {
            cols,
            rows,
            pitch,
            removed_seed,
            removal,
        })
}

fn build_map(g: &GridCity) -> CityMap {
    let mut rng = SimRng::new(g.removed_seed);
    let mut footprints = Vec::new();
    for y in 0..g.rows {
        for x in 0..g.cols {
            if rng.chance(g.removal) {
                continue;
            }
            let ox = x as f64 * g.pitch;
            let oy = y as f64 * g.pitch;
            footprints.push(Polygon::rect(Rect::from_corners(
                Point::new(ox, oy),
                Point::new(ox + 12.0, oy + 12.0),
            )));
        }
    }
    // Guarantee at least two buildings.
    if footprints.len() < 2 {
        footprints = vec![
            Polygon::rect(Rect::from_corners(
                Point::new(0.0, 0.0),
                Point::new(12.0, 12.0),
            )),
            Polygon::rect(Rect::from_corners(
                Point::new(30.0, 0.0),
                Point::new(42.0, 12.0),
            )),
        ];
    }
    CityMap::new("prop-grid", footprints, vec![])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's central compression invariant: every building on
    /// the planned route lies inside some reconstructed conduit.
    #[test]
    fn conduit_cover_invariant(g in grid_city(), pair_seed in any::<u64>(), width in 20.0..90.0f64) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        let Ok(route) = plan_route(&bg, src, dst) else { return Ok(()) };
        let compressed = compress_route(&bg, &route, width).unwrap();
        let conduits = reconstruct_conduits(&map, &compressed.waypoints, width);
        for &b in &route {
            prop_assert!(
                within_conduits(&conduits, bg.centroid(b)),
                "building {} escaped the cover (width {})", b, width
            );
        }
    }

    /// Compression structure: endpoints preserved, waypoints form a
    /// subsequence of the route, and never grow past it.
    #[test]
    fn compression_structure(g in grid_city(), pair_seed in any::<u64>()) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        let Ok(route) = plan_route(&bg, src, dst) else { return Ok(()) };
        let compressed = compress_route(&bg, &route, 50.0).unwrap();
        prop_assert_eq!(compressed.waypoints[0], route[0]);
        prop_assert_eq!(*compressed.waypoints.last().unwrap(), *route.last().unwrap());
        prop_assert!(compressed.waypoints.len() <= route.len());
        // Subsequence check.
        let mut it = route.iter();
        for wp in &compressed.waypoints {
            prop_assert!(
                it.any(|r| r == wp),
                "waypoints must be a subsequence of the route"
            );
        }
    }

    /// Planned routes only use predicted links.
    #[test]
    fn routes_follow_graph_edges(g in grid_city(), pair_seed in any::<u64>()) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        let Ok(route) = plan_route(&bg, src, dst) else { return Ok(()) };
        for w in route.windows(2) {
            prop_assert!(bg.graph().has_edge(w[0], w[1]), "route used non-edge {}–{}", w[0], w[1]);
        }
    }

    /// Real compressed routes survive header encoding exactly, in both
    /// encodings.
    #[test]
    fn real_routes_survive_wire_encoding(g in grid_city(), pair_seed in any::<u64>(), delta in any::<bool>()) {
        let map = build_map(&g);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        let Ok(route) = plan_route(&bg, src, dst) else { return Ok(()) };
        let compressed = compress_route(&bg, &route, 50.0).unwrap();
        let mut header = CityMeshHeader::new(pair_seed, 50.0, compressed.waypoints.clone());
        if delta {
            header.encoding = citymesh_net::RouteEncoding::Delta;
        }
        let mut w = BitWriter::new();
        header.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let decoded = CityMeshHeader::decode(&mut BitReader::new(&bytes)).unwrap();
        prop_assert_eq!(decoded.waypoints, compressed.waypoints);
    }

    /// AP placement invariants on random densities: every AP inside
    /// its building, ids sequential, every building populated.
    #[test]
    fn placement_invariants(g in grid_city(), density in 50.0..2000.0f64, seed in any::<u64>()) {
        let map = build_map(&g);
        let mut rng = SimRng::new(seed);
        let aps = place_aps(&map, density, &mut rng);
        prop_assert!(aps.len() >= map.len(), "min one AP per building");
        let mut populated = vec![false; map.len()];
        for (i, ap) in aps.iter().enumerate() {
            prop_assert_eq!(ap.id as usize, i);
            let b = map.building(ap.building).unwrap();
            prop_assert!(b.footprint.contains(ap.pos));
            populated[ap.building as usize] = true;
        }
        prop_assert!(populated.iter().all(|p| *p));
    }

    /// Scratch reuse is bit-for-bit equivalent to fresh allocation:
    /// replaying the same flows through one dirtied `DeliveryScratch`
    /// must reproduce every `PairOutcome` the allocate-per-call
    /// `simulate_flow` path yields, on any random city. This is the
    /// contract that lets the fleet engine reuse one scratch per
    /// worker without perturbing the fleet digest.
    #[test]
    fn scratch_reuse_equals_fresh_allocation(
        g in grid_city(),
        world_seed in any::<u64>(),
        pair_seed in any::<u64>(),
        loss in 0.0..0.4f64,
    ) {
        let map = build_map(&g);
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: world_seed,
                reception_loss: loss,
                reachability_pairs: 10,
                delivery_pairs: 4,
                ..ExperimentConfig::default()
            },
        );
        let n = exp.map().len() as u64;
        let mut pick = SimRng::new(pair_seed);
        let mut scratch = DeliveryScratch::new();
        for i in 0..6u64 {
            let src = pick.below(n) as u32;
            let dst = pick.below(n) as u32;
            let plan = exp.plan_flow(src, dst);
            let msg_id = 0x5EED_0000 + i;
            // Same RNG stream for both paths: equivalence must hold
            // draw-for-draw, not just in distribution.
            let mut rng_fresh = SimRng::new(pair_seed ^ i);
            let mut rng_scratch = rng_fresh.clone();
            let fresh = exp.simulate_flow(&plan, msg_id, &mut rng_fresh);
            let reused = exp.simulate_flow_with(&plan, msg_id, &mut rng_scratch, &mut scratch);
            prop_assert_eq!(&fresh, &reused, "flow {} diverged under scratch reuse", i);
            prop_assert_eq!(rng_fresh.below(u64::MAX), rng_scratch.below(u64::MAX),
                "RNG streams desynchronized on flow {}", i);
        }
    }

    /// The goal-directed A* behind `plan_route` is optimal: its path
    /// cost equals the full-Dijkstra distance. Grid cities matter here
    /// — their uniform pitch produces *exact* floating-point cost
    /// ties, the regime where an inadmissible heuristic or sloppy
    /// tie-breaking would first surface as a longer route.
    #[test]
    fn plan_route_cost_is_optimal(
        g in grid_city(),
        pair_seed in any::<u64>(),
        exponent in 1.0..4.0f64,
    ) {
        let map = build_map(&g);
        let params = BuildingGraphParams { max_gap_m: 40.0, weight_exponent: exponent };
        let bg = BuildingGraph::build(&map, params);
        let mut rng = SimRng::new(pair_seed);
        let n = map.len() as u64;
        let src = rng.below(n) as u32;
        let dst = rng.below(n) as u32;
        let truth = citymesh_graph::dijkstra(bg.graph(), src);
        match plan_route(&bg, src, dst) {
            Ok(route) => {
                prop_assert_eq!(route[0], src);
                prop_assert_eq!(*route.last().unwrap(), dst);
                let mut cost = 0.0;
                for w in route.windows(2) {
                    let e = bg.graph().neighbors(w[0]).iter().find(|e| e.to == w[1]);
                    prop_assert!(e.is_some(), "route used non-edge {}–{}", w[0], w[1]);
                    cost += e.unwrap().weight;
                }
                let best = truth.dist[dst as usize];
                prop_assert!(
                    (cost - best).abs() <= 1e-9 * best.max(1.0),
                    "A* route cost {} is not the shortest distance {}", cost, best
                );
            }
            Err(_) => prop_assert!(
                truth.dist[dst as usize].is_infinite(),
                "plan_route failed on a connected pair"
            ),
        }
    }

    /// Planning into one dirtied `PlanScratch` + reused `PlannedFlow`
    /// is field-for-field equivalent to a fresh `plan_flow`, and the
    /// resulting plans simulate identically draw-for-draw — including
    /// under faults with a stale map, where the lazy recovery rungs
    /// (widen, replan-around-casualties) are exercised. This is the
    /// contract that lets the fleet engine plan through one scratch
    /// per worker without perturbing any digest.
    #[test]
    fn plan_scratch_reuse_equals_fresh_plan(
        g in grid_city(),
        world_seed in any::<u64>(),
        pair_seed in any::<u64>(),
        failure_p in 0.0..0.35f64,
    ) {
        let map = build_map(&g);
        let mut scenario = FaultScenario::iid(failure_p);
        scenario.stale_map = true;
        let exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                seed: world_seed,
                reachability_pairs: 10,
                delivery_pairs: 4,
                faults: Some(scenario),
                ..ExperimentConfig::default()
            },
        );
        let n = exp.map().len() as u64;
        let mut pick = SimRng::new(pair_seed);
        let mut plan_scratch = PlanScratch::new();
        let mut reused = PlannedFlow::empty(0, 0);
        let mut sim_scratch = DeliveryScratch::new();
        for i in 0..6u64 {
            let src = pick.below(n) as u32;
            let dst = pick.below(n) as u32;
            let fresh = exp.plan_flow(src, dst);
            exp.plan_flow_into(src, dst, &mut plan_scratch, &mut reused);
            prop_assert_eq!(fresh.src, reused.src);
            prop_assert_eq!(fresh.dst, reused.dst);
            prop_assert_eq!(fresh.reachable, reused.reachable);
            prop_assert_eq!(fresh.route_len, reused.route_len);
            prop_assert_eq!(&fresh.waypoints, &reused.waypoints);
            prop_assert_eq!(&fresh.conduits, &reused.conduits);
            prop_assert_eq!(fresh.route_bits, reused.route_bits);
            prop_assert_eq!(fresh.src_ap, reused.src_ap);
            prop_assert_eq!(fresh.ideal_hops, reused.ideal_hops);
            let msg_id = 0x5EED_1000 + i;
            let mut rng_fresh = SimRng::new(pair_seed ^ i);
            let mut rng_reused = rng_fresh.clone();
            let out_fresh = exp.simulate_flow(&fresh, msg_id, &mut rng_fresh);
            let out_reused =
                exp.simulate_flow_with(&reused, msg_id, &mut rng_reused, &mut sim_scratch);
            prop_assert_eq!(&out_fresh, &out_reused, "flow {} diverged under plan reuse", i);
        }
    }

    /// Building-graph symmetry: edges are undirected and weights obey
    /// the configured exponent against centroid distances.
    #[test]
    fn building_graph_weight_law(g in grid_city(), exponent in 1.0..4.0f64) {
        let map = build_map(&g);
        let params = BuildingGraphParams { max_gap_m: 40.0, weight_exponent: exponent };
        let bg = BuildingGraph::build(&map, params);
        for u in 0..map.len() as u32 {
            for e in bg.graph().neighbors(u) {
                prop_assert!(bg.graph().has_edge(e.to, u), "undirected symmetry");
                let d = bg.centroid(u).dist(bg.centroid(e.to)).max(1.0);
                let expect = d.powf(exponent);
                prop_assert!(
                    (e.weight - expect).abs() <= 1e-6 * expect.max(1.0),
                    "weight law violated: {} vs {}", e.weight, expect
                );
            }
        }
    }
}
