//! The per-AP software agent (paper §3 step 3).
//!
//! Each AP runs the same small program: on receiving a packet, decide
//! — from the packet header and the AP's cached city map only —
//! whether to deliver it to a local postbox and whether to rebroadcast
//! it. The agent keeps *no* routing state; its only memory is a
//! bounded duplicate-suppression cache of recently seen message IDs.

use std::collections::{HashSet, VecDeque};

use citymesh_geo::{OrientedRect, Point};
use citymesh_map::CityMap;
use citymesh_net::CityMeshHeader;

use crate::conduit::{reconstruct_conduits, within_conduits};

/// Which geometry the rebroadcast predicate tests against the conduit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RebroadcastScope {
    /// The AP's **building centroid** must lie in a conduit: every AP
    /// of a covered building relays. This matches the paper's
    /// description ("APs in buildings that fall within the geographic
    /// area of the conduits") and its ~13× overhead accounting, which
    /// it attributes to "all the APs within a building rebroadcast".
    #[default]
    Building,
    /// The AP's **own position** must lie in a conduit. Fewer relays
    /// per building; evaluated as the paper's proposed
    /// overhead-reduction direction.
    ApPosition,
}

/// The agent's verdict for one received packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Action {
    /// Hand the payload to the postbox service on this AP (we are in
    /// the destination building).
    pub deliver: bool,
    /// Schedule a rebroadcast.
    pub rebroadcast: bool,
}

impl Action {
    /// Neither deliver nor rebroadcast.
    pub const IGNORE: Action = Action {
        deliver: false,
        rebroadcast: false,
    };
}

/// A bounded recently-seen-message cache (FIFO eviction).
///
/// Real APs cannot keep unbounded state; bounding it also caps how
/// long a stale duplicate can be recognized, which the TTL backstops.
#[derive(Clone, Debug)]
pub struct SeenCache {
    set: HashSet<u64>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl SeenCache {
    /// Creates a cache remembering up to `capacity` message IDs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SeenCache {
            set: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records `id`; returns `true` when it was already present.
    pub fn check_and_insert(&mut self, id: u64) -> bool {
        if self.set.contains(&id) {
            return true;
        }
        if self.order.len() == self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.set.remove(&evicted);
            }
        }
        self.order.push_back(id);
        self.set.insert(id);
        false
    }

    /// Number of remembered IDs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Forgets every remembered ID, keeping both allocations. Cost is
    /// proportional to the number of *live* entries, so a cache that
    /// saw one message clears in O(1) regardless of capacity.
    pub fn clear(&mut self) {
        self.set.clear();
        self.order.clear();
    }
}

/// The stateful part of one AP's agent.
#[derive(Clone, Debug)]
pub struct ApAgent {
    /// This AP's location.
    pub pos: Point,
    /// The building containing this AP.
    pub building: u32,
    /// Duplicate-suppression memory.
    pub seen: SeenCache,
    /// Rebroadcast geometry policy.
    pub scope: RebroadcastScope,
}

impl ApAgent {
    /// The seen-cache capacity of a deployed AP: 4096 IDs ≈ a few
    /// minutes of city-wide traffic; small enough for router RAM,
    /// large enough that duplicates die out long before eviction.
    pub const DEPLOYED_SEEN_CAPACITY: usize = 4096;

    /// Creates an agent for an AP at `pos` inside `building` with the
    /// deployed-AP seen-cache capacity.
    pub fn new(pos: Point, building: u32, scope: RebroadcastScope) -> Self {
        Self::with_seen_capacity(pos, building, scope, Self::DEPLOYED_SEEN_CAPACITY)
    }

    /// Creates an agent with an explicit duplicate-cache capacity.
    ///
    /// Capacity only changes *when old IDs are evicted*, never how a
    /// given packet is handled, so a simulation that replays one
    /// message per agent lifetime (e.g. the delivery kernel, which
    /// resets agents between flows) can use a tiny capacity and remain
    /// bit-identical to [`ApAgent::new`] while skipping the two large
    /// hash/deque allocations behind `DEPLOYED_SEEN_CAPACITY`.
    pub fn with_seen_capacity(
        pos: Point,
        building: u32,
        scope: RebroadcastScope,
        capacity: usize,
    ) -> Self {
        ApAgent {
            pos,
            building,
            seen: SeenCache::new(capacity),
            scope,
        }
    }

    /// Repoints this agent at a (possibly different) AP and forgets
    /// all duplicate-suppression state, keeping the seen-cache
    /// allocations. After `reset_for`, the agent is observationally
    /// identical to a freshly constructed one with the same capacity.
    pub fn reset_for(&mut self, pos: Point, building: u32, scope: RebroadcastScope) {
        self.pos = pos;
        self.building = building;
        self.scope = scope;
        self.seen.clear();
    }

    /// Processes a received packet header against `map`, reconstructing
    /// conduits itself. Prefer [`ApAgent::handle_with_conduits`] when a
    /// caller already shares reconstructed conduits across APs.
    pub fn handle(&mut self, header: &CityMeshHeader, map: &CityMap) -> Action {
        let conduits = reconstruct_conduits(map, &header.waypoints, header.conduit_width_m());
        self.handle_with_conduits(header, map, &conduits)
    }

    /// Processing core with caller-supplied conduits (identical for
    /// every AP handling the same message, so simulations reconstruct
    /// once).
    pub fn handle_with_conduits(
        &mut self,
        header: &CityMeshHeader,
        map: &CityMap,
        conduits: &[OrientedRect],
    ) -> Action {
        if self.seen.check_and_insert(header.msg_id) {
            return Action::IGNORE; // duplicate
        }
        let deliver = self.building == header.destination();
        if header.ttl == 0 {
            return Action {
                deliver,
                rebroadcast: false,
            };
        }
        let probe = match self.scope {
            RebroadcastScope::ApPosition => self.pos,
            RebroadcastScope::Building => match map.building(self.building) {
                Some(b) => b.centroid,
                // Map disagreement: this AP's building is unknown to
                // its own cache — fail closed (no relay storm).
                None => {
                    return Action {
                        deliver,
                        rebroadcast: false,
                    }
                }
            },
        };
        let rebroadcast = within_conduits(conduits, probe);
        Action {
            deliver,
            rebroadcast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_geo::{Polygon, Rect};
    use citymesh_net::CityMeshHeader;

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// Buildings every 30 m along x; route goes 0 → 4.
    fn test_map() -> CityMap {
        CityMap::new(
            "agent-test",
            (0..5)
                .map(|i| square_at(i as f64 * 30.0, 0.0, 10.0))
                .collect(),
            vec![],
        )
    }

    fn header_to(_map: &CityMap, dst: u32) -> CityMeshHeader {
        CityMeshHeader::new(99, 50.0, vec![0, dst])
    }

    #[test]
    fn seen_cache_dedup_and_eviction() {
        let mut c = SeenCache::new(2);
        assert!(!c.check_and_insert(1));
        assert!(c.check_and_insert(1));
        assert!(!c.check_and_insert(2));
        assert!(!c.check_and_insert(3)); // evicts 1
        assert!(!c.check_and_insert(1), "evicted id is forgotten");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_forgets_everything_and_preserves_capacity_semantics() {
        let mut c = SeenCache::new(2);
        assert!(!c.check_and_insert(1));
        assert!(!c.check_and_insert(2));
        c.clear();
        assert!(c.is_empty());
        assert!(!c.check_and_insert(1), "cleared ids are forgotten");
        assert!(!c.check_and_insert(2));
        assert!(!c.check_and_insert(3), "eviction still caps at capacity");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reset_agent_matches_fresh_agent() {
        let map = test_map();
        let h = header_to(&map, 4);
        let mut fresh = ApAgent::new(Point::new(65.0, 5.0), 2, RebroadcastScope::Building);
        let mut reused = ApAgent::new(Point::new(1.0, 99.0), 0, RebroadcastScope::ApPosition);
        reused.handle(&h, &map); // dirty the seen cache
        reused.reset_for(Point::new(65.0, 5.0), 2, RebroadcastScope::Building);
        assert_eq!(reused.handle(&h, &map), fresh.handle(&h, &map));
        assert_eq!(reused.handle(&h, &map), Action::IGNORE, "dup still caught");
    }

    #[test]
    fn small_capacity_agent_handles_identically() {
        let map = test_map();
        let h = header_to(&map, 4);
        let mut big = ApAgent::new(Point::new(65.0, 5.0), 2, RebroadcastScope::Building);
        let mut small =
            ApAgent::with_seen_capacity(Point::new(65.0, 5.0), 2, RebroadcastScope::Building, 1);
        assert_eq!(small.handle(&h, &map), big.handle(&h, &map));
        assert_eq!(small.handle(&h, &map), big.handle(&h, &map));
    }

    #[test]
    fn on_route_ap_rebroadcasts() {
        let map = test_map();
        let h = header_to(&map, 4);
        // AP in building 2, squarely on the straight conduit.
        let mut agent = ApAgent::new(Point::new(65.0, 5.0), 2, RebroadcastScope::Building);
        let action = agent.handle(&h, &map);
        assert!(action.rebroadcast);
        assert!(!action.deliver);
    }

    #[test]
    fn off_conduit_ap_stays_silent() {
        let mut footprints: Vec<Polygon> = (0..5)
            .map(|i| square_at(i as f64 * 30.0, 0.0, 10.0))
            .collect();
        footprints.push(square_at(60.0, 200.0, 10.0)); // far off the route
        let map = CityMap::new("with-outlier", footprints, vec![]);
        let outlier = map.nearest_building(Point::new(65.0, 205.0)).unwrap().id;
        let route_src = map.nearest_building(Point::new(5.0, 5.0)).unwrap().id;
        let route_dst = map.nearest_building(Point::new(125.0, 5.0)).unwrap().id;
        let h = CityMeshHeader::new(1, 50.0, vec![route_src, route_dst]);
        let mut agent = ApAgent::new(Point::new(65.0, 205.0), outlier, RebroadcastScope::Building);
        assert_eq!(agent.handle(&h, &map), Action::IGNORE);
    }

    #[test]
    fn destination_building_delivers() {
        let map = test_map();
        let h = CityMeshHeader::new(2, 50.0, vec![0, 4]);
        let mut agent = ApAgent::new(Point::new(125.0, 5.0), 4, RebroadcastScope::Building);
        let action = agent.handle(&h, &map);
        assert!(action.deliver);
        assert!(
            action.rebroadcast,
            "destination building is inside the last conduit"
        );
    }

    #[test]
    fn duplicates_ignored_entirely() {
        let map = test_map();
        let h = CityMeshHeader::new(3, 50.0, vec![0, 4]);
        let mut agent = ApAgent::new(Point::new(65.0, 5.0), 2, RebroadcastScope::Building);
        assert!(agent.handle(&h, &map).rebroadcast);
        assert_eq!(agent.handle(&h, &map), Action::IGNORE);
    }

    #[test]
    fn ttl_zero_delivers_but_never_relays() {
        let map = test_map();
        let mut h = CityMeshHeader::new(4, 50.0, vec![0, 4]);
        h.ttl = 0;
        let mut agent = ApAgent::new(Point::new(125.0, 5.0), 4, RebroadcastScope::Building);
        let action = agent.handle(&h, &map);
        assert!(action.deliver);
        assert!(!action.rebroadcast);
    }

    #[test]
    fn scope_changes_the_predicate() {
        let map = test_map();
        let h = CityMeshHeader::new(5, 20.0, vec![0, 4]);
        // The spine runs along y = 5 (building centroids). An AP at
        // y = 20 sits 15 m off it, in an on-route building: building
        // scope relays (centroid on spine), position scope does not
        // (15 > W/2 = 10).
        let pos = Point::new(65.0, 20.0);
        let mut by_building = ApAgent::new(pos, 2, RebroadcastScope::Building);
        let mut by_pos = ApAgent::new(pos, 2, RebroadcastScope::ApPosition);
        assert!(by_building.handle(&h, &map).rebroadcast);
        assert!(!by_pos.handle(&h, &map).rebroadcast);
    }

    #[test]
    fn unknown_building_fails_closed() {
        let map = test_map();
        let h = CityMeshHeader::new(6, 50.0, vec![0, 4]);
        let mut agent = ApAgent::new(Point::new(65.0, 5.0), 77, RebroadcastScope::Building);
        assert_eq!(agent.handle(&h, &map), Action::IGNORE);
    }
}
