//! Island bridging: planning the "small number of well-placed APs"
//! the paper proposes for cities that fracture (§4).
//!
//! When large features (rivers, parks, highways) split a city's AP
//! fabric into islands, CityMesh cannot deliver across the gap. The
//! planner finds, for each secondary island, the closest AP pair to
//! the main island and recommends relay AP positions along that
//! segment, spaced within radio range. [`apply_bridges`] then
//! materializes the relays as small "relay hut" footprints in the
//! *map* — crucial, because CityMesh routes from the map: a relay the
//! map does not know about can carry radio traffic but can never be a
//! routed waypoint or a building-scope rebroadcaster.

use citymesh_geo::{Point, Polygon, Rect};
use citymesh_map::CityMap;

use crate::apgraph::ApGraph;
use crate::placement::Ap;

/// A planned bridge between two islands.
#[derive(Clone, Debug)]
pub struct Bridge {
    /// AP on the main (growing) island side.
    pub from_ap: u32,
    /// AP on the island being attached.
    pub to_ap: u32,
    /// Gap between the two APs, meters.
    pub gap_m: f64,
    /// Relay positions to place, in order from `from_ap` to `to_ap`
    /// (empty when the APs are already within range — possible when
    /// islands are radio-separate only through unlucky placement).
    pub relays: Vec<Point>,
}

/// The full plan for one city.
#[derive(Clone, Debug, Default)]
pub struct BridgePlan {
    /// One bridge per island attached, in attachment order (largest
    /// secondary island first).
    pub bridges: Vec<Bridge>,
}

impl BridgePlan {
    /// All relay positions across all bridges.
    pub fn relay_positions(&self) -> Vec<Point> {
        self.bridges
            .iter()
            .flat_map(|b| b.relays.iter().copied())
            .collect()
    }

    /// Total relays recommended.
    pub fn relay_count(&self) -> usize {
        self.bridges.iter().map(|b| b.relays.len()).sum()
    }
}

/// Plans bridges until the AP graph would be one island or the relay
/// budget is exhausted. Islands are attached largest-first, each by
/// its closest AP pair to the already-connected mass.
///
/// `spacing_factor` (0 < f ≤ 1) scales the relay spacing relative to
/// the radio range; 0.8 leaves margin for fading.
pub fn plan_bridges(apg: &ApGraph, max_relays: usize, spacing_factor: f64) -> BridgePlan {
    assert!(
        spacing_factor > 0.0 && spacing_factor <= 1.0,
        "spacing factor must be in (0, 1]"
    );
    let n = apg.len();
    let mut plan = BridgePlan::default();
    if n == 0 || apg.num_components() <= 1 {
        return plan;
    }

    // Group APs by component, keyed by the first AP seen in each
    // (ApGraph caches component labels, so `reachable` is O(1)).
    let mut reps: Vec<u32> = Vec::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for ap in 0..n as u32 {
        match reps.iter().position(|r| apg.reachable(*r, ap)) {
            Some(i) => groups[i].push(ap),
            None => {
                reps.push(ap);
                groups.push(vec![ap]);
            }
        }
    }
    let mut islands: Vec<Vec<u32>> = groups;
    islands.sort_by_key(|v| std::cmp::Reverse(v.len()));

    let spacing = apg.range_m() * spacing_factor;
    let mut main: Vec<u32> = islands.remove(0);
    let mut budget = max_relays;

    for island in islands {
        // Closest pair between `main` and `island`.
        let mut best: Option<(u32, u32, f64)> = None;
        for &a in &main {
            let pa = apg.position(a);
            for &b in &island {
                let d = pa.dist(apg.position(b));
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let (from_ap, to_ap, gap_m) = best.expect("islands are non-empty");
        let relays_needed = if gap_m <= spacing {
            0
        } else {
            (gap_m / spacing).ceil() as usize - 1
        };
        if relays_needed > budget {
            continue; // cannot afford this island; try cheaper ones
        }
        budget -= relays_needed;
        let pa = apg.position(from_ap);
        let pb = apg.position(to_ap);
        let relays: Vec<Point> = (1..=relays_needed)
            .map(|i| pa.lerp(pb, i as f64 / (relays_needed + 1) as f64))
            .collect();
        plan.bridges.push(Bridge {
            from_ap,
            to_ap,
            gap_m,
            relays,
        });
        main.extend(island);
    }
    plan
}

/// Side length of the synthetic relay-hut footprint, meters.
pub const RELAY_HUT_SIDE_M: f64 = 4.0;

/// Materializes a plan into a new map: each relay becomes a
/// [`RELAY_HUT_SIDE_M`]-square "relay hut" footprint (a pole-mounted
/// AP cabinet) **appended** after the existing buildings, so every
/// pre-existing building keeps its ID — devices caching the old map
/// remain compatible. Routes planned on the new map may pass through
/// the huts.
///
/// Relay positions may fall inside obstacle regions (a pole on a
/// bridge or riverbank) — that is the point of the exercise.
pub fn apply_bridges(map: &CityMap, relay_positions: &[Point]) -> CityMap {
    let half = RELAY_HUT_SIDE_M / 2.0;
    let huts: Vec<Polygon> = relay_positions
        .iter()
        .map(|p| {
            Polygon::rect(Rect::from_corners(
                Point::new(p.x - half, p.y - half),
                Point::new(p.x + half, p.y + half),
            ))
        })
        .collect();
    map.extended_with(huts, "+bridged")
}

/// Extends an existing AP placement with one AP per relay hut, placed
/// exactly at the hut center. `bridged_map` must be the output of
/// [`apply_bridges`] for the same `relay_positions`, and `aps` the
/// placement the plan was computed against — existing APs keep their
/// positions, so the planned relay chain is within range by
/// construction.
pub fn extend_placement(aps: &[Ap], bridged_map: &CityMap, relay_positions: &[Point]) -> Vec<Ap> {
    let original_buildings = bridged_map.len() - relay_positions.len();
    let mut out = aps.to_vec();
    for (i, p) in relay_positions.iter().enumerate() {
        out.push(Ap {
            id: out.len() as u32,
            pos: *p,
            building: (original_buildings + i) as u32,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildgraph::{BuildingGraph, BuildingGraphParams};
    use crate::pipeline::{CityExperiment, ExperimentConfig};
    use crate::placement::place_aps;
    use citymesh_simcore::SimRng;

    fn ap(id: u32, x: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, 0.0),
            building,
        }
    }

    /// Two islands 200 m apart along x.
    fn two_islands() -> ApGraph {
        let aps = vec![
            ap(0, 0.0, 0),
            ap(1, 40.0, 1),
            ap(2, 240.0, 2),
            ap(3, 280.0, 3),
        ];
        ApGraph::build(&aps, 50.0)
    }

    #[test]
    fn plans_relays_across_the_gap() {
        let apg = two_islands();
        let plan = plan_bridges(&apg, 100, 0.8);
        assert_eq!(plan.bridges.len(), 1);
        let b = &plan.bridges[0];
        assert_eq!(b.gap_m, 200.0);
        // 200 m gap at 40 m spacing: ceil(200/40) - 1 = 4 relays.
        assert_eq!(b.relays.len(), 4);
        // Relays are evenly spaced strictly between the endpoints and
        // every consecutive hop is within the radio range.
        let mut chain = vec![apg.position(b.from_ap)];
        chain.extend(b.relays.iter().copied());
        chain.push(apg.position(b.to_ap));
        for w in chain.windows(2) {
            assert!(w[0].dist(w[1]) <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn connected_graph_needs_no_plan() {
        let aps = vec![ap(0, 0.0, 0), ap(1, 40.0, 1)];
        let apg = ApGraph::build(&aps, 50.0);
        let plan = plan_bridges(&apg, 100, 0.8);
        assert!(plan.bridges.is_empty());
        assert_eq!(plan.relay_count(), 0);
    }

    #[test]
    fn budget_limits_the_plan() {
        let apg = two_islands();
        // The 200 m gap needs 4 relays; a budget of 3 affords none.
        let plan = plan_bridges(&apg, 3, 0.8);
        assert!(plan.bridges.is_empty());
    }

    #[test]
    fn three_islands_attach_largest_first() {
        let aps = vec![
            // Main island: 3 APs.
            ap(0, 0.0, 0),
            ap(1, 40.0, 1),
            ap(2, 80.0, 2),
            // Medium island: 2 APs, 120 m east of main's edge.
            ap(3, 200.0, 3),
            ap(4, 240.0, 4),
            // Tiny island: 1 AP, farther east.
            ap(5, 400.0, 5),
        ];
        let apg = ApGraph::build(&aps, 50.0);
        assert_eq!(apg.num_components(), 3);
        let plan = plan_bridges(&apg, 100, 0.8);
        assert_eq!(plan.bridges.len(), 2);
        // First bridge attaches the 2-AP island, second the singleton.
        assert_eq!(plan.bridges[0].to_ap, 3);
        assert_eq!(plan.bridges[1].to_ap, 5);
        // Second bridge launches from the *extended* main (AP 4 is
        // closest to AP 5).
        assert_eq!(plan.bridges[1].from_ap, 4);
    }

    #[test]
    fn applying_bridges_reconnects_a_river_city() {
        // End-to-end: a river-split survey area becomes one island
        // after planning + applying bridges, and reachability jumps.
        // The original AP placement is preserved so the planned relay
        // chain stays valid by construction.
        let map = citymesh_map::CityArchetype::SurveyRiver.generate(5);
        let config = ExperimentConfig {
            seed: 5,
            reachability_pairs: 150,
            delivery_pairs: 0,
            ..ExperimentConfig::default()
        };
        let before = CityExperiment::prepare(map.clone(), config);
        let components_before = before.ap_graph().num_components();
        assert!(components_before > 1, "the river must split the fabric");
        let reach_before = before.run().reachability;

        let plan = plan_bridges(before.ap_graph(), 200, 0.8);
        assert!(plan.relay_count() > 0);
        let relays = plan.relay_positions();
        let bridged_map = apply_bridges(&map, &relays);
        assert_eq!(bridged_map.len(), map.len() + plan.relay_count());
        // Existing building IDs are preserved.
        for b in map.buildings() {
            assert_eq!(bridged_map.building(b.id).unwrap().centroid, b.centroid);
        }

        let aps = extend_placement(before.aps(), &bridged_map, &relays);
        let after = CityExperiment::from_parts(bridged_map, aps, config);
        assert!(
            after.ap_graph().num_components() < components_before,
            "bridging must reduce island count"
        );
        let reach_after = after.run().reachability;
        assert!(
            reach_after > reach_before + 0.1,
            "reachability should jump: {reach_before} → {reach_after}"
        );
    }

    #[test]
    fn bridged_map_routes_through_huts() {
        // The building graph of the bridged map must link across the
        // gap (huts become route waypoints).
        let map = citymesh_map::CityArchetype::SurveyRiver.generate(6);
        let mut rng = SimRng::new(6);
        let aps = place_aps(&map, 200.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        if apg.num_components() == 1 {
            return; // seed produced a connected city; nothing to test
        }
        let plan = plan_bridges(&apg, 200, 0.8);
        let bridged = apply_bridges(&map, &plan.relay_positions());
        let bg_before = BuildingGraph::build(&map, BuildingGraphParams::default());
        let bg_after = BuildingGraph::build(&bridged, BuildingGraphParams::default());
        let (_, comps_before) = bg_before.components();
        let (_, comps_after) = bg_after.components();
        assert!(
            comps_after <= comps_before,
            "hut footprints must not fragment the building graph"
        );
    }

    #[test]
    #[should_panic(expected = "spacing factor")]
    fn zero_spacing_panics() {
        let apg = two_islands();
        plan_bridges(&apg, 10, 0.0);
    }
}
