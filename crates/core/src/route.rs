//! Building-route planning (paper §3 step 2).
//!
//! Planning is goal-directed A* over the cubed-distance building
//! graph, driven by [`BuildingGraph::cost_lower_bound`]: the max of
//! the straight-line Euclidean centroid distance (admissible for
//! weight exponents ≥ 1, where every edge costs `max(d, 1)^e ≥ d`)
//! and the ALT landmark bound `|d(k, dst) − d(k, v)|`, which is
//! admissible in the actual weight metric for any exponent and is the
//! estimate that actually prunes cubed-distance graphs — straight-line
//! meters wildly under-state costs that grow as distance *cubed*.
//! Combined with the canonical tie-breaking rule in
//! [`citymesh_graph`]'s scratch kernels, A* returns the same
//! minimum-cost routes as plain Dijkstra (bit-identical whenever route
//! costs are untied, which is the generic case on surveyed
//! coordinates) while expanding only the corridor toward the target.

use citymesh_graph::{astar_path_filtered_into, PlannerScratch};

use crate::buildgraph::BuildingGraph;

/// Route-planning failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// Source or destination building ID is out of range for the map.
    UnknownBuilding(u32),
    /// The building graph predicts no path between the endpoints —
    /// the endpoints sit on different predicted islands.
    NoPredictedPath {
        /// Source building.
        src: u32,
        /// Destination building.
        dst: u32,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownBuilding(id) => write!(f, "unknown building {id}"),
            RouteError::NoPredictedPath { src, dst } => {
                write!(f, "no predicted building path {src} → {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Plans the building route from `src` to `dst` over the predicted
/// connectivity graph: the cubed-distance-shortest path, as a sequence
/// of building IDs including both endpoints.
///
/// `src == dst` yields the single-building route `[src]`.
pub fn plan_route(bg: &BuildingGraph, src: u32, dst: u32) -> Result<Vec<u32>, RouteError> {
    plan_route_avoiding(bg, src, dst, &std::collections::HashSet::new())
}

/// Like [`plan_route`], but treating every building in `blocked` as
/// unusable (endpoints are exempt). This is the detour primitive the
/// DFN security requirement calls for (paper §1: the protocol should
/// "find a path between two nodes wishing to communicate if there
/// exists a path that does not traverse a compromised node") — a
/// sender that learns a region is compromised or destroyed replans
/// around it.
pub fn plan_route_avoiding(
    bg: &BuildingGraph,
    src: u32,
    dst: u32,
    blocked: &std::collections::HashSet<u32>,
) -> Result<Vec<u32>, RouteError> {
    let mut scratch = PlannerScratch::new();
    let mut out = Vec::new();
    plan_route_avoiding_into(bg, src, dst, blocked, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`plan_route`] against caller-owned buffers: writes the route into
/// `out` and reuses `scratch` for the search state, so a warm caller
/// plans with zero heap allocations. Returns the same routes as
/// [`plan_route`] — the allocating entry points are wrappers over this
/// kernel.
///
/// # Errors
/// Same contract as [`plan_route`]; `out` is left cleared on error.
pub fn plan_route_into(
    bg: &BuildingGraph,
    src: u32,
    dst: u32,
    scratch: &mut PlannerScratch,
    out: &mut Vec<u32>,
) -> Result<(), RouteError> {
    plan_route_avoiding_into(
        bg,
        src,
        dst,
        &std::collections::HashSet::new(),
        scratch,
        out,
    )
}

/// [`plan_route_avoiding`] against caller-owned buffers; see
/// [`plan_route_into`].
///
/// # Errors
/// Same contract as [`plan_route_avoiding`]; `out` is left cleared on
/// error.
pub fn plan_route_avoiding_into(
    bg: &BuildingGraph,
    src: u32,
    dst: u32,
    blocked: &std::collections::HashSet<u32>,
    scratch: &mut PlannerScratch,
    out: &mut Vec<u32>,
) -> Result<(), RouteError> {
    out.clear();
    let n = bg.len() as u32;
    for id in [src, dst] {
        if id >= n {
            return Err(RouteError::UnknownBuilding(id));
        }
    }
    if src == dst {
        out.push(src);
        return Ok(());
    }
    // Goal-directed heuristic: the landmark/Euclidean cost lower
    // bound (see the module docs). Blocked buildings only remove
    // options, so the same bound stays admissible for detours.
    let h = move |v: u32| bg.cost_lower_bound(v, dst);
    let found = if blocked.is_empty() {
        astar_path_filtered_into(bg.graph(), src, dst, h, |_| true, scratch, out)
    } else {
        astar_path_filtered_into(
            bg.graph(),
            src,
            dst,
            h,
            |v| !blocked.contains(&v),
            scratch,
            out,
        )
    };
    if found {
        Ok(())
    } else {
        Err(RouteError::NoPredictedPath { src, dst })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildgraph::BuildingGraphParams;
    use citymesh_geo::{Point, Polygon, Rect};
    use citymesh_map::CityMap;

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// An L-shaped city: a direct diagonal is impossible, the route
    /// must go through the corner building.
    ///
    /// ```text
    ///   2
    ///   1
    ///   0  3  4
    /// ```
    fn l_map() -> (CityMap, BuildingGraph) {
        let map = CityMap::new(
            "l",
            vec![
                square_at(0.0, 0.0, 10.0),  // 0 corner
                square_at(0.0, 30.0, 10.0), // up
                square_at(0.0, 60.0, 10.0), // up-up
                square_at(30.0, 0.0, 10.0), // right
                square_at(60.0, 0.0, 10.0), // right-right
            ],
            vec![],
        );
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        (map, bg)
    }

    #[test]
    fn routes_through_the_corner() {
        let (map, bg) = l_map();
        // Identify top (y≈60) and right (x≈60) endpoints by centroid.
        let top = map
            .buildings()
            .iter()
            .find(|b| b.centroid.y > 50.0)
            .unwrap()
            .id;
        let right = map
            .buildings()
            .iter()
            .find(|b| b.centroid.x > 50.0)
            .unwrap()
            .id;
        let corner = map
            .buildings()
            .iter()
            .find(|b| b.centroid.x < 20.0 && b.centroid.y < 20.0)
            .unwrap()
            .id;
        let route = plan_route(&bg, top, right).unwrap();
        assert_eq!(route.len(), 5);
        assert_eq!(route[0], top);
        assert_eq!(*route.last().unwrap(), right);
        assert!(route.contains(&corner));
    }

    #[test]
    fn trivial_route_to_self() {
        let (_, bg) = l_map();
        assert_eq!(plan_route(&bg, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn unknown_building_rejected() {
        let (_, bg) = l_map();
        assert_eq!(plan_route(&bg, 0, 99), Err(RouteError::UnknownBuilding(99)));
        assert_eq!(plan_route(&bg, 99, 0), Err(RouteError::UnknownBuilding(99)));
    }

    #[test]
    fn disconnected_endpoints_error() {
        let map = CityMap::new(
            "islands",
            vec![square_at(0.0, 0.0, 10.0), square_at(500.0, 0.0, 10.0)],
            vec![],
        );
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        assert_eq!(
            plan_route(&bg, 0, 1),
            Err(RouteError::NoPredictedPath { src: 0, dst: 1 })
        );
    }

    #[test]
    fn avoiding_blocked_buildings_detours() {
        // A 3×3 grid of buildings; block the center column's middle
        // and the route must arc around it.
        let mut footprints = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                footprints.push(square_at(x as f64 * 30.0, y as f64 * 30.0, 10.0));
            }
        }
        let map = CityMap::new("grid3", footprints, vec![]);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        // West-middle → east-middle; center building sits between.
        let west = map.nearest_building(Point::new(5.0, 35.0)).unwrap().id;
        let east = map.nearest_building(Point::new(65.0, 35.0)).unwrap().id;
        let center = map.nearest_building(Point::new(35.0, 35.0)).unwrap().id;
        let direct = plan_route(&bg, west, east).unwrap();
        assert!(direct.contains(&center), "cheapest route passes the center");
        let blocked: std::collections::HashSet<u32> = [center].into_iter().collect();
        let detour = plan_route_avoiding(&bg, west, east, &blocked).unwrap();
        assert!(!detour.contains(&center));
        assert!(detour.len() > direct.len(), "the detour is longer");
        // Blocking the whole middle row severs the grid horizontally…
        // except the grid detours via top/bottom rows; block those
        // center cells too and it truly fails.
        let all_mid: std::collections::HashSet<u32> = map
            .buildings()
            .iter()
            .filter(|b| (b.centroid.x - 35.0).abs() < 10.0)
            .map(|b| b.id)
            .collect();
        assert_eq!(
            plan_route_avoiding(&bg, west, east, &all_mid),
            Err(RouteError::NoPredictedPath {
                src: west,
                dst: east
            })
        );
    }

    #[test]
    fn cubed_weights_prefer_many_short_hops() {
        // A chain of short hops vs one long direct edge: with cubed
        // weights the chain wins even though it has more hops.
        //
        //  0 -10m- 1 -10m- 2 -10m- 3    and a direct 0–3 edge (gap 50m)
        let map = CityMap::new(
            "chain",
            vec![
                square_at(0.0, 0.0, 10.0),
                square_at(20.0, 0.0, 10.0),
                square_at(40.0, 0.0, 10.0),
                square_at(60.0, 0.0, 10.0),
            ],
            vec![],
        );
        let bg = BuildingGraph::build(
            &map,
            // Gap 50 still links 0–3 directly.
            BuildingGraphParams {
                max_gap_m: 50.0,
                weight_exponent: 3.0,
            },
        );
        assert!(
            bg.graph().has_edge(0, 3),
            "long edge must exist for the test"
        );
        let route = plan_route(&bg, 0, 3).unwrap();
        assert_eq!(
            route,
            vec![0, 1, 2, 3],
            "cubed weights should take the chain"
        );

        // Ablation: with linear weights the direct edge wins.
        let bg1 = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 50.0,
                weight_exponent: 1.0,
            },
        );
        let route1 = plan_route(&bg1, 0, 3).unwrap();
        assert_eq!(route1, vec![0, 3], "linear weights should go direct");
    }
}
