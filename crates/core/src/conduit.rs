//! Route compression into conduits (paper §3 step 2, Figure 4).
//!
//! Instead of shipping the full building list, the sender keeps only
//! *waypoint* buildings. Between consecutive waypoints lies a conduit:
//! an oriented rectangle of width `W` whose spine joins the waypoint
//! centroids. The compression invariant is that **every building on
//! the original route falls inside some conduit**, so the rebroadcast
//! region always covers the planned path — and, because the region is
//! wider than the path, the scheme tolerates mispredicted
//! inter-building links (nearby off-route buildings also relay).

use citymesh_geo::{OrientedRect, Point, Segment};
use citymesh_map::CityMap;

use crate::buildgraph::BuildingGraph;

/// Route-compression input failures.
///
/// Both conditions used to be `panic!`s; they are data conditions in
/// any pipeline that accepts external configuration (a NaN width from
/// a config file must not crash a relay), so they now surface as
/// values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConduitError {
    /// The route to compress contained no buildings.
    EmptyRoute,
    /// The conduit width was NaN, zero, or negative.
    NonPositiveWidth(
        /// The offending width, meters.
        f64,
    ),
}

impl std::fmt::Display for ConduitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConduitError::EmptyRoute => write!(f, "cannot compress an empty route"),
            ConduitError::NonPositiveWidth(w) => {
                write!(f, "conduit width must be positive and finite, got {w}")
            }
        }
    }
}

impl std::error::Error for ConduitError {}

/// A compressed route: the waypoint buildings plus the conduit width
/// they were compressed against.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedRoute {
    /// Waypoint building IDs; first is the source's building, last the
    /// destination postbox building. Never empty.
    pub waypoints: Vec<u32>,
    /// Conduit width `W`, meters.
    pub width_m: f64,
}

impl CompressedRoute {
    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Always false (a route has at least one waypoint).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Compresses `route` (building IDs from [`crate::plan_route`]) into
/// waypoints using the paper's greedy cover algorithm:
///
/// > place the starting edge of the first conduit on the centroid of
/// > the first building in the route. We then find the latest building
/// > in the route at which we can place the ending edge of the conduit
/// > and cover all buildings in the route that precede it.
///
/// ```
/// use citymesh_core::{compress_route, plan_route, BuildingGraph, BuildingGraphParams};
/// use citymesh_map::CityArchetype;
///
/// let map = CityArchetype::SurveyDowntown.generate(1);
/// let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
/// let route = plan_route(&bg, 0, 100).unwrap();
/// let compressed = compress_route(&bg, &route, 50.0).unwrap();
/// assert!(compressed.waypoints.len() <= route.len());
/// assert_eq!(compressed.waypoints[0], route[0]);
///
/// assert!(compress_route(&bg, &route, 0.0).is_err());
/// assert!(compress_route(&bg, &[], 50.0).is_err());
/// ```
///
/// # Errors
/// [`ConduitError::EmptyRoute`] on an empty route;
/// [`ConduitError::NonPositiveWidth`] when `width_m` is NaN, zero, or
/// negative.
pub fn compress_route(
    bg: &BuildingGraph,
    route: &[u32],
    width_m: f64,
) -> Result<CompressedRoute, ConduitError> {
    let mut waypoints = Vec::new();
    compress_route_into(bg, route, width_m, &mut waypoints)?;
    Ok(CompressedRoute { waypoints, width_m })
}

/// [`compress_route`] against a caller-owned waypoint buffer: clears
/// `out` and fills it with the waypoint ids, allocating only when the
/// buffer must grow. The steady-state planner reuses one buffer across
/// flows, so compression becomes allocation-free once warm.
///
/// # Errors
/// Same contract as [`compress_route`]; `out` is left cleared on error.
pub fn compress_route_into(
    bg: &BuildingGraph,
    route: &[u32],
    width_m: f64,
    out: &mut Vec<u32>,
) -> Result<(), ConduitError> {
    out.clear();
    if route.is_empty() {
        return Err(ConduitError::EmptyRoute);
    }
    // NaN fails `is_finite`, so this rejects NaN, ±inf, zero, and
    // negatives together.
    if width_m <= 0.0 || !width_m.is_finite() {
        return Err(ConduitError::NonPositiveWidth(width_m));
    }

    let waypoints = out;
    waypoints.push(route[0]);
    let mut start = 0usize; // index of the current waypoint within `route`

    while start + 1 < route.len() {
        let a = bg.centroid(route[start]);
        // Find the farthest j > start whose conduit covers all
        // intermediate buildings.
        let mut best = start + 1; // adjacent always trivially covers
        for j in (start + 1)..route.len() {
            let spine = Segment::new(a, bg.centroid(route[j]));
            let conduit = OrientedRect::new(spine, width_m);
            let all_covered = route[start + 1..j]
                .iter()
                .all(|&b| conduit.contains(bg.centroid(b)));
            if all_covered {
                best = j;
            }
            // No early break: coverage is not monotone in j (a farther
            // endpoint can swing the spine back over a missed building).
        }
        waypoints.push(route[best]);
        start = best;
    }

    Ok(())
}

/// Reconstructs the conduit rectangles for a waypoint list — the
/// operation every relaying AP performs from the packet header and its
/// cached map (paper §3 step 3).
///
/// A single-waypoint route yields one degenerate conduit (a disc of
/// radius `W/2` around the destination building's centroid).
pub fn reconstruct_conduits(map: &CityMap, waypoints: &[u32], width_m: f64) -> Vec<OrientedRect> {
    let mut out = Vec::new();
    reconstruct_conduits_into(map, waypoints, width_m, &mut out);
    out
}

/// [`reconstruct_conduits`] against a caller-owned buffer: clears `out`
/// and fills it with the conduit rectangles, allocating only when the
/// buffer must grow.
pub fn reconstruct_conduits_into(
    map: &CityMap,
    waypoints: &[u32],
    width_m: f64,
    out: &mut Vec<OrientedRect>,
) {
    out.clear();
    let centroid = |id: u32| -> Point {
        map.building(id)
            .unwrap_or_else(|| panic!("waypoint {id} not in map"))
            .centroid
    };
    if waypoints.len() == 1 {
        let c = centroid(waypoints[0]);
        out.push(OrientedRect::new(Segment::new(c, c), width_m));
        return;
    }
    out.extend(
        waypoints
            .windows(2)
            .map(|w| OrientedRect::new(Segment::new(centroid(w[0]), centroid(w[1])), width_m)),
    );
}

/// Whether `p` lies within any of `conduits` (the rebroadcast
/// predicate's geometric core).
pub fn within_conduits(conduits: &[OrientedRect], p: Point) -> bool {
    conduits.iter().any(|c| c.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildgraph::{BuildingGraph, BuildingGraphParams};
    use citymesh_geo::{Polygon, Rect};
    use citymesh_map::CityMap;

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// A straight row of buildings every 30 m plus helpers.
    fn straight_city(n: usize) -> (CityMap, BuildingGraph) {
        let footprints = (0..n)
            .map(|i| square_at(i as f64 * 30.0, 0.0, 10.0))
            .collect();
        let map = CityMap::new("straight", footprints, vec![]);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        (map, bg)
    }

    #[test]
    fn straight_route_compresses_to_two_waypoints() {
        let (_, bg) = straight_city(12);
        let route: Vec<u32> = (0..12).collect();
        let c = compress_route(&bg, &route, 50.0).unwrap();
        assert_eq!(
            c.waypoints,
            vec![0, 11],
            "a collinear route needs only its endpoints"
        );
    }

    #[test]
    fn every_routed_building_is_covered() {
        // An L-shaped route cannot compress to two waypoints.
        let mut footprints: Vec<Polygon> = (0..6)
            .map(|i| square_at(i as f64 * 30.0, 0.0, 10.0))
            .collect();
        footprints.extend((1..6).map(|i| square_at(150.0, i as f64 * 30.0, 10.0)));
        let map = CityMap::new("l", footprints, vec![]);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        let src = map.nearest_building(Point::new(0.0, 0.0)).unwrap().id;
        let dst = map.nearest_building(Point::new(150.0, 150.0)).unwrap().id;
        let route = crate::plan_route(&bg, src, dst).unwrap();
        let c = compress_route(&bg, &route, 40.0).unwrap();
        assert!(c.waypoints.len() >= 3, "an L needs a corner waypoint");
        assert!(c.waypoints.len() < route.len(), "compression must compress");

        let conduits = reconstruct_conduits(&map, &c.waypoints, c.width_m);
        for &b in &route {
            assert!(
                within_conduits(&conduits, bg.centroid(b)),
                "building {b} escaped the conduit cover"
            );
        }
    }

    #[test]
    fn narrower_width_needs_more_waypoints() {
        // A gently zig-zagging route.
        let footprints: Vec<Polygon> = (0..20)
            .map(|i| {
                let y = if i % 2 == 0 { 0.0 } else { 18.0 };
                square_at(i as f64 * 28.0, y, 10.0)
            })
            .collect();
        let map = CityMap::new("zigzag", footprints, vec![]);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 30.0,
                weight_exponent: 3.0,
            },
        );
        let route = crate::plan_route(&bg, 0, (map.len() - 1) as u32).unwrap();
        let wide = compress_route(&bg, &route, 80.0).unwrap();
        let narrow = compress_route(&bg, &route, 22.0).unwrap();
        assert!(
            narrow.len() >= wide.len(),
            "narrow ({}) should need at least as many waypoints as wide ({})",
            narrow.len(),
            wide.len()
        );
    }

    #[test]
    fn endpoints_always_kept() {
        let (_, bg) = straight_city(5);
        for width in [10.0, 50.0, 100.0] {
            let c = compress_route(&bg, &[0, 1, 2, 3, 4], width).unwrap();
            assert_eq!(c.waypoints[0], 0);
            assert_eq!(*c.waypoints.last().unwrap(), 4);
        }
    }

    #[test]
    fn single_building_route() {
        let (map, bg) = straight_city(3);
        let c = compress_route(&bg, &[1], 50.0).unwrap();
        assert_eq!(c.waypoints, vec![1]);
        let conduits = reconstruct_conduits(&map, &c.waypoints, 50.0);
        assert_eq!(conduits.len(), 1);
        assert!(within_conduits(&conduits, bg.centroid(1)));
        // The disc covers W/2 around the building.
        assert!(within_conduits(
            &conduits,
            bg.centroid(1) + citymesh_geo::Vec2::new(24.0, 0.0)
        ));
        assert!(!within_conduits(
            &conduits,
            bg.centroid(1) + citymesh_geo::Vec2::new(26.0, 0.0)
        ));
    }

    #[test]
    fn two_building_route() {
        let (map, bg) = straight_city(2);
        let c = compress_route(&bg, &[0, 1], 50.0).unwrap();
        assert_eq!(c.waypoints, vec![0, 1]);
        let conduits = reconstruct_conduits(&map, &c.waypoints, 50.0);
        assert_eq!(conduits.len(), 1);
    }

    #[test]
    fn conduits_connect_consecutive_waypoints() {
        let (map, bg) = straight_city(12);
        let c = compress_route(&bg, &(0..12).collect::<Vec<u32>>(), 50.0).unwrap();
        let conduits = reconstruct_conduits(&map, &c.waypoints, c.width_m);
        assert_eq!(conduits.len(), c.waypoints.len() - 1);
        for (i, conduit) in conduits.iter().enumerate() {
            assert_eq!(conduit.spine.a, bg.centroid(c.waypoints[i]));
            assert_eq!(conduit.spine.b, bg.centroid(c.waypoints[i + 1]));
            assert_eq!(conduit.width, 50.0);
        }
    }

    #[test]
    fn empty_route_is_an_error() {
        let (_, bg) = straight_city(2);
        assert_eq!(
            compress_route(&bg, &[], 50.0),
            Err(ConduitError::EmptyRoute)
        );
    }

    #[test]
    fn bad_widths_are_errors_not_panics() {
        let (_, bg) = straight_city(2);
        for w in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = compress_route(&bg, &[0, 1], w).unwrap_err();
            assert!(
                matches!(err, ConduitError::NonPositiveWidth(_)),
                "width {w} must be rejected, got {err}"
            );
        }
        // Errors render usefully for config diagnostics.
        let msg = compress_route(&bg, &[0, 1], -1.0).unwrap_err().to_string();
        assert!(msg.contains("-1"), "message should carry the value: {msg}");
    }
}
