//! The postbox: destination-side store-and-forward (paper §3 step 4).
//!
//! A postbox lives on one AP. It caches sealed messages for its
//! owners, performs integrity checks (the AEAD tag — the postbox
//! cannot read contents), serves retrieval on check-in, tracks each
//! owner's last known building for push notifications, and evicts by
//! TTL and per-owner capacity.

use std::collections::HashMap;

use citymesh_crypto::{Keypair, NodeId, SealedMessage};
use citymesh_simcore::SimTime;

/// Postbox service errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostboxError {
    /// The addressee is not registered at this postbox.
    UnknownRecipient,
    /// The message failed structural validation (too short to be a
    /// sealed message).
    Malformed,
    /// Per-owner storage is full and the incoming message is not newer
    /// than anything stored.
    Full,
}

impl std::fmt::Display for PostboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostboxError::UnknownRecipient => write!(f, "unknown recipient"),
            PostboxError::Malformed => write!(f, "malformed sealed message"),
            PostboxError::Full => write!(f, "postbox full for recipient"),
        }
    }
}

impl std::error::Error for PostboxError {}

/// Result of a retrieve-and-open pass: `(msg_id, plaintext)` pairs
/// that opened, plus the IDs that failed authentication.
pub type OpenedMail = (Vec<(u64, Vec<u8>)>, Vec<u64>);

/// A message held by the postbox.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredMessage {
    /// The sealed payload (opaque to the postbox).
    pub sealed: SealedMessage,
    /// Packet-header message ID (dedup across retries).
    pub msg_id: u64,
    /// When the postbox accepted it.
    pub stored_at: SimTime,
}

/// Per-owner mailbox state.
#[derive(Clone, Debug, Default)]
struct Mailbox {
    messages: Vec<StoredMessage>,
    /// Owner's last reported building (for push notifications).
    last_building: Option<u32>,
    /// Wants pushes?
    push_enabled: bool,
}

/// The postbox service state for one AP.
#[derive(Clone, Debug)]
pub struct Postbox {
    boxes: HashMap<NodeId, Mailbox>,
    /// Messages older than this are evicted on [`Postbox::sweep`].
    pub retention: SimTime,
    /// Maximum messages kept per owner.
    pub per_owner_capacity: usize,
}

impl Postbox {
    /// Creates a postbox with the given retention and per-owner cap.
    pub fn new(retention: SimTime, per_owner_capacity: usize) -> Self {
        assert!(per_owner_capacity > 0, "capacity must be positive");
        Postbox {
            boxes: HashMap::new(),
            retention,
            per_owner_capacity,
        }
    }

    /// Sensible defaults: 72 h retention (disaster timescale), 256
    /// messages per owner.
    pub fn with_defaults() -> Self {
        Postbox::new(SimTime::from_secs_f64(72.0 * 3600.0), 256)
    }

    /// Registers `owner` at this postbox. Registration is how a
    /// device claims the postbox named in its out-of-band address.
    pub fn register(&mut self, owner: NodeId) {
        self.boxes.entry(owner).or_default();
    }

    /// Whether `owner` is registered here.
    pub fn is_registered(&self, owner: &NodeId) -> bool {
        self.boxes.contains_key(owner)
    }

    /// Accepts a sealed message for `recipient` at time `now`.
    ///
    /// Duplicate `msg_id`s (network retries / multi-path copies) are
    /// accepted idempotently: the message is stored once and the call
    /// reports success.
    pub fn deposit(
        &mut self,
        recipient: NodeId,
        msg_id: u64,
        sealed: SealedMessage,
        now: SimTime,
    ) -> Result<(), PostboxError> {
        let mb = self
            .boxes
            .get_mut(&recipient)
            .ok_or(PostboxError::UnknownRecipient)?;
        if mb.messages.iter().any(|m| m.msg_id == msg_id) {
            return Ok(()); // idempotent duplicate
        }
        if mb.messages.len() >= self.per_owner_capacity {
            // Evict the oldest to admit the new (fresher news wins in
            // a disaster scenario).
            mb.messages.remove(0);
        }
        mb.messages.push(StoredMessage {
            sealed,
            msg_id,
            stored_at: now,
        });
        Ok(())
    }

    /// A device checks in: returns (a copy of) all pending messages
    /// and records the device's current building for push routing.
    pub fn check_in(
        &mut self,
        owner: &NodeId,
        current_building: u32,
        enable_push: bool,
    ) -> Result<Vec<StoredMessage>, PostboxError> {
        let mb = self
            .boxes
            .get_mut(owner)
            .ok_or(PostboxError::UnknownRecipient)?;
        mb.last_building = Some(current_building);
        mb.push_enabled = enable_push;
        Ok(mb.messages.clone())
    }

    /// Acknowledges (deletes) messages up to and including `msg_id`s
    /// in `acked`. Returns how many were removed.
    pub fn acknowledge(&mut self, owner: &NodeId, acked: &[u64]) -> usize {
        let Some(mb) = self.boxes.get_mut(owner) else {
            return 0;
        };
        let before = mb.messages.len();
        mb.messages.retain(|m| !acked.contains(&m.msg_id));
        before - mb.messages.len()
    }

    /// Where to push a new message for `owner`: their last known
    /// building, when pushes are enabled.
    pub fn push_target(&self, owner: &NodeId) -> Option<u32> {
        let mb = self.boxes.get(owner)?;
        if mb.push_enabled {
            mb.last_building
        } else {
            None
        }
    }

    /// Evicts expired messages; returns how many were dropped.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        for mb in self.boxes.values_mut() {
            let before = mb.messages.len();
            let retention = self.retention;
            mb.messages
                .retain(|m| now.saturating_since(m.stored_at) <= retention);
            dropped += before - mb.messages.len();
        }
        dropped
    }

    /// Total messages stored across all owners.
    pub fn total_messages(&self) -> usize {
        self.boxes.values().map(|m| m.messages.len()).sum()
    }

    /// Convenience for tests and examples: retrieve-and-open all
    /// pending messages with the owner's keypair, acknowledging the
    /// ones that opened. Messages that fail to open (tampered or
    /// misaddressed) are left in place and reported by `msg_id`.
    pub fn retrieve_and_open(
        &mut self,
        owner: &Keypair,
        current_building: u32,
        aad_for: impl Fn(u64) -> Vec<u8>,
    ) -> Result<OpenedMail, PostboxError> {
        let pending = self.check_in(&owner.node_id(), current_building, true)?;
        let mut opened = Vec::new();
        let mut failed = Vec::new();
        for m in pending {
            match m.sealed.open(owner, &aad_for(m.msg_id)) {
                Ok(plain) => opened.push((m.msg_id, plain)),
                Err(_) => failed.push(m.msg_id),
            }
        }
        let acked: Vec<u64> = opened.iter().map(|(id, _)| *id).collect();
        self.acknowledge(&owner.node_id(), &acked);
        Ok((opened, failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_crypto::PostboxAddress;

    fn bob() -> Keypair {
        Keypair::from_entropy([0xB0; 32])
    }

    fn sealed_to_bob(entropy: u8, msg_id: u64, body: &[u8]) -> SealedMessage {
        let addr = PostboxAddress {
            public_key: bob().public,
            building_id: 7,
        };
        SealedMessage::seal(&addr, [entropy; 32], &msg_id.to_le_bytes(), body).unwrap()
    }

    #[test]
    fn register_deposit_retrieve() {
        let mut pb = Postbox::with_defaults();
        let bob_id = bob().node_id();
        assert!(!pb.is_registered(&bob_id));
        pb.register(bob_id);
        assert!(pb.is_registered(&bob_id));

        pb.deposit(bob_id, 1, sealed_to_bob(1, 1, b"hello"), SimTime::ZERO)
            .unwrap();
        pb.deposit(
            bob_id,
            2,
            sealed_to_bob(2, 2, b"again"),
            SimTime::from_millis(5),
        )
        .unwrap();
        assert_eq!(pb.total_messages(), 2);

        let (opened, failed) = pb
            .retrieve_and_open(&bob(), 7, |id| id.to_le_bytes().to_vec())
            .unwrap();
        assert_eq!(failed, Vec::<u64>::new());
        assert_eq!(opened.len(), 2);
        assert_eq!(opened[0].1, b"hello");
        assert_eq!(opened[1].1, b"again");
        // Opened messages were acknowledged.
        assert_eq!(pb.total_messages(), 0);
    }

    #[test]
    fn unknown_recipient_rejected() {
        let mut pb = Postbox::with_defaults();
        let err = pb
            .deposit(bob().node_id(), 1, sealed_to_bob(1, 1, b"x"), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, PostboxError::UnknownRecipient);
        assert_eq!(
            pb.check_in(&bob().node_id(), 1, false).unwrap_err(),
            PostboxError::UnknownRecipient
        );
    }

    #[test]
    fn duplicate_msg_id_is_idempotent() {
        let mut pb = Postbox::with_defaults();
        pb.register(bob().node_id());
        let m = sealed_to_bob(3, 42, b"once");
        pb.deposit(bob().node_id(), 42, m.clone(), SimTime::ZERO)
            .unwrap();
        pb.deposit(bob().node_id(), 42, m, SimTime::from_millis(1))
            .unwrap();
        assert_eq!(pb.total_messages(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut pb = Postbox::new(SimTime::from_secs_f64(3600.0), 3);
        pb.register(bob().node_id());
        for i in 0..5u64 {
            pb.deposit(
                bob().node_id(),
                i,
                sealed_to_bob(i as u8, i, b"m"),
                SimTime::from_millis(i),
            )
            .unwrap();
        }
        assert_eq!(pb.total_messages(), 3);
        let pending = pb.check_in(&bob().node_id(), 1, false).unwrap();
        let ids: Vec<u64> = pending.iter().map(|m| m.msg_id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn retention_sweep() {
        let mut pb = Postbox::new(SimTime::from_secs_f64(10.0), 10);
        pb.register(bob().node_id());
        pb.deposit(
            bob().node_id(),
            1,
            sealed_to_bob(1, 1, b"old"),
            SimTime::ZERO,
        )
        .unwrap();
        pb.deposit(
            bob().node_id(),
            2,
            sealed_to_bob(2, 2, b"new"),
            SimTime::from_secs_f64(8.0),
        )
        .unwrap();
        let dropped = pb.sweep(SimTime::from_secs_f64(15.0));
        assert_eq!(dropped, 1);
        assert_eq!(pb.total_messages(), 1);
    }

    #[test]
    fn push_target_tracks_checkins() {
        let mut pb = Postbox::with_defaults();
        pb.register(bob().node_id());
        assert_eq!(pb.push_target(&bob().node_id()), None);
        pb.check_in(&bob().node_id(), 55, true).unwrap();
        assert_eq!(pb.push_target(&bob().node_id()), Some(55));
        pb.check_in(&bob().node_id(), 66, false).unwrap();
        assert_eq!(pb.push_target(&bob().node_id()), None, "push disabled");
    }

    #[test]
    fn tampered_message_left_in_place() {
        let mut pb = Postbox::with_defaults();
        pb.register(bob().node_id());
        let mut bad = sealed_to_bob(9, 9, b"tamper me");
        bad.ciphertext[0] ^= 1;
        pb.deposit(bob().node_id(), 9, bad, SimTime::ZERO).unwrap();
        let (opened, failed) = pb
            .retrieve_and_open(&bob(), 7, |id| id.to_le_bytes().to_vec())
            .unwrap();
        assert!(opened.is_empty());
        assert_eq!(failed, vec![9]);
        assert_eq!(pb.total_messages(), 1, "unopened messages stay stored");
    }

    #[test]
    fn acknowledge_counts() {
        let mut pb = Postbox::with_defaults();
        pb.register(bob().node_id());
        for i in 0..3u64 {
            pb.deposit(
                bob().node_id(),
                i,
                sealed_to_bob(i as u8, i, b"m"),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(pb.acknowledge(&bob().node_id(), &[0, 2]), 2);
        assert_eq!(pb.acknowledge(&bob().node_id(), &[0]), 0);
        assert_eq!(
            pb.acknowledge(&Keypair::from_entropy([1; 32]).node_id(), &[1]),
            0
        );
    }
}
