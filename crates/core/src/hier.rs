//! Hierarchical (district-overlay) route planning — the metro-scale
//! fast path (DESIGN.md §12).
//!
//! The flat planner in [`crate::route`] is goal-directed A* whose ALT
//! heuristic rests on eight *global* landmarks. That works at
//! neighborhood scale, but a metro has 100k+ buildings: eight
//! landmarks spread over hundreds of districts leave most corridors
//! unguided, and even a perfectly guided search still touches every
//! building along the route. [`HierPlanner`] instead routes over a
//! district overlay — Netsukuku-style "route at the higher level
//! first, then locally": an overlay Dijkstra between district border
//! nodes (thousands, not hundreds of thousands), then per-district
//! landmark-guided A* expansions only for the districts the winning
//! route actually crosses.
//!
//! Exactness is inherited from [`citymesh_graph::Hierarchy`]: overlay
//! arc weights are true shortest-path costs, so the hierarchical route
//! cost equals the flat-optimal cost (proptested in
//! `tests/hier_props.rs`). Fault handling mirrors
//! [`crate::route::plan_route_avoiding_into`]: blocked buildings are
//! excluded (endpoints exempt), and districts containing blocked
//! buildings are rescanned on the fly instead of trusting their
//! precomputed arcs.

use std::collections::HashSet;

use citymesh_graph::{HierParams, HierScratch, HierStats, Hierarchy, Partition};

use crate::buildgraph::BuildingGraph;
use crate::route::RouteError;

/// Reusable state for hierarchical planning: the overlay/endpoint
/// search scratch plus the per-query dirty-district list. One per
/// worker; a warm caller plans with zero heap allocations.
#[derive(Clone, Debug, Default)]
pub struct HierPlanScratch {
    search: HierScratch,
    dirty: Vec<u32>,
}

impl HierPlanScratch {
    /// Fresh scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative query counters (never reset by the planner) — the
    /// telemetry feed for overlay work and fault rescans.
    pub fn stats(&self) -> HierStats {
        self.search.stats
    }
}

/// District-overlay planner over a [`BuildingGraph`].
///
/// Built once per experiment (partitioning and overlay construction
/// allocate; queries do not) and queried through
/// [`plan_route_into`](HierPlanner::plan_route_into) /
/// [`plan_route_avoiding_into`](HierPlanner::plan_route_avoiding_into),
/// which mirror the flat planner's error contract exactly. Routes are
/// cost-optimal: equal to flat Dijkstra cost, with the crate-wide
/// canonical tie-break (ties resolve toward the direct same-district
/// route, then toward smaller parent ids).
#[derive(Clone, Debug)]
pub struct HierPlanner {
    hierarchy: Hierarchy,
}

impl HierPlanner {
    /// Partitions `bg` into districts by centroid grid and builds the
    /// border-node overlay. Deterministic in `(bg, params)`.
    pub fn build(bg: &BuildingGraph, params: &HierParams) -> Self {
        let positions: Vec<(f64, f64)> = (0..bg.len() as u32)
            .map(|v| {
                let c = bg.centroid(v);
                (c.x, c.y)
            })
            .collect();
        let part = Partition::grid(&positions, params.target_district_size);
        let hierarchy = Hierarchy::build(bg.graph(), part, params);
        HierPlanner { hierarchy }
    }

    /// The underlying overlay structure (districts, border nodes,
    /// precomputed arcs).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Heap bytes held by the partition and overlay tables — what the
    /// hierarchy costs on top of the building graph.
    pub fn memory_bytes(&self) -> usize {
        self.hierarchy.memory_bytes()
    }

    /// Hierarchical counterpart of [`crate::route::plan_route`]:
    /// allocates its own scratch, returns the route.
    ///
    /// # Errors
    /// Same contract as [`crate::route::plan_route`].
    pub fn plan_route(
        &self,
        bg: &BuildingGraph,
        src: u32,
        dst: u32,
    ) -> Result<Vec<u32>, RouteError> {
        let mut scratch = HierPlanScratch::new();
        let mut out = Vec::new();
        self.plan_route_into(bg, src, dst, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Hierarchical counterpart of [`crate::route::plan_route_into`]:
    /// plans `src → dst` into `out` against caller-owned scratch, with
    /// zero heap allocations once warm.
    ///
    /// # Errors
    /// Same contract as [`crate::route::plan_route_into`]; `out` is
    /// left cleared on error.
    pub fn plan_route_into(
        &self,
        bg: &BuildingGraph,
        src: u32,
        dst: u32,
        scratch: &mut HierPlanScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), RouteError> {
        // An unused `HashSet::new()` does not allocate.
        self.plan_route_avoiding_into(bg, src, dst, &HashSet::new(), scratch, out)
    }

    /// Hierarchical counterpart of
    /// [`crate::route::plan_route_avoiding_into`]: every building in
    /// `blocked` is treated as unusable (endpoints exempt), and every
    /// district containing a blocked building is rescanned on the fly
    /// instead of using its precomputed overlay arcs.
    ///
    /// # Errors
    /// Same contract as [`crate::route::plan_route_avoiding_into`];
    /// `out` is left cleared on error.
    pub fn plan_route_avoiding_into(
        &self,
        bg: &BuildingGraph,
        src: u32,
        dst: u32,
        blocked: &HashSet<u32>,
        scratch: &mut HierPlanScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), RouteError> {
        out.clear();
        let n = bg.len() as u32;
        for id in [src, dst] {
            if id >= n {
                return Err(RouteError::UnknownBuilding(id));
            }
        }
        let lb = |a: u32, b: u32| bg.cost_lower_bound(a, b);
        let found = if blocked.is_empty() {
            self.hierarchy.plan_path_into(
                bg.graph(),
                src,
                dst,
                lb,
                |_| true,
                &[],
                &mut scratch.search,
                out,
            )
        } else {
            // Dirty-district marking is order-independent, so the
            // HashSet's nondeterministic iteration order cannot leak
            // into the route.
            let part = self.hierarchy.partition();
            scratch.dirty.clear();
            for &b in blocked {
                if b < n {
                    scratch.dirty.push(part.district_of(b));
                }
            }
            self.hierarchy.plan_path_into(
                bg.graph(),
                src,
                dst,
                lb,
                |v| !blocked.contains(&v),
                &scratch.dirty,
                &mut scratch.search,
                out,
            )
        };
        if found {
            Ok(())
        } else {
            Err(RouteError::NoPredictedPath { src, dst })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildgraph::BuildingGraphParams;
    use crate::route;
    use citymesh_graph::PlannerScratch;

    fn downtown_bg() -> BuildingGraph {
        let map = citymesh_map::CityArchetype::SurveyDowntown.generate(11);
        BuildingGraph::build(&map, BuildingGraphParams::default())
    }

    /// Cost of a route: per consecutive pair, the cheapest parallel
    /// edge (the one every planner uses).
    fn route_cost(bg: &BuildingGraph, route: &[u32]) -> f64 {
        route
            .windows(2)
            .map(|w| {
                bg.graph()
                    .neighbors(w[0])
                    .iter()
                    .filter(|e| e.to == w[1])
                    .map(|e| e.weight)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }

    fn assert_cost_eq(a: f64, b: f64) {
        let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= tol, "costs differ: {a} vs {b}");
    }

    #[test]
    fn hier_cost_matches_flat_on_a_survey_city() {
        let bg = downtown_bg();
        let planner = HierPlanner::build(
            &bg,
            &HierParams {
                target_district_size: 48,
                ..HierParams::default()
            },
        );
        assert!(planner.hierarchy().partition().num_districts() > 4);
        let mut hs = HierPlanScratch::new();
        let mut fs = PlannerScratch::new();
        let (mut hier_route, mut flat_route) = (Vec::new(), Vec::new());
        let n = bg.len() as u32;
        for (src, dst) in [(0, n - 1), (3, n / 2), (n / 3, n - 7), (n - 1, 1)] {
            let h = planner.plan_route_into(&bg, src, dst, &mut hs, &mut hier_route);
            let f = route::plan_route_into(&bg, src, dst, &mut fs, &mut flat_route);
            assert_eq!(h.is_ok(), f.is_ok(), "{src}→{dst}");
            if h.is_ok() {
                assert_eq!(hier_route.first(), Some(&src));
                assert_eq!(hier_route.last(), Some(&dst));
                assert_cost_eq(route_cost(&bg, &hier_route), route_cost(&bg, &flat_route));
            }
        }
        assert!(hs.stats().queries >= 4);
    }

    #[test]
    fn hier_cost_matches_flat_with_blocked_buildings() {
        let bg = downtown_bg();
        let planner = HierPlanner::build(
            &bg,
            &HierParams {
                target_district_size: 48,
                ..HierParams::default()
            },
        );
        let n = bg.len() as u32;
        let (src, dst) = (1, n - 2);
        let blocked: HashSet<u32> = (0..n)
            .filter(|v| v % 13 == 5 && *v != src && *v != dst)
            .collect();
        let mut hs = HierPlanScratch::new();
        let mut fs = PlannerScratch::new();
        let (mut hier_route, mut flat_route) = (Vec::new(), Vec::new());
        let h = planner.plan_route_avoiding_into(&bg, src, dst, &blocked, &mut hs, &mut hier_route);
        let f = route::plan_route_avoiding_into(&bg, src, dst, &blocked, &mut fs, &mut flat_route);
        assert_eq!(h.is_ok(), f.is_ok());
        if h.is_ok() {
            assert!(hier_route[1..hier_route.len() - 1]
                .iter()
                .all(|v| !blocked.contains(v)));
            assert_cost_eq(route_cost(&bg, &hier_route), route_cost(&bg, &flat_route));
            assert!(hs.stats().dirty_rescans > 0, "faults must force rescans");
        }
    }

    #[test]
    fn error_contract_matches_flat_planner() {
        let bg = downtown_bg();
        let planner = HierPlanner::build(&bg, &HierParams::default());
        let n = bg.len() as u32;
        assert_eq!(
            planner.plan_route(&bg, n, 0).unwrap_err(),
            RouteError::UnknownBuilding(n)
        );
        assert_eq!(planner.plan_route(&bg, 4, 4).unwrap(), vec![4]);
    }
}
