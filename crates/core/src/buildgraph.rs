//! The building graph: predicted inter-building connectivity.
//!
//! Built from footprints alone — no information from the network
//! (paper §3 step 2). Two buildings get an edge when the gap between
//! their footprints is small enough that APs inside them are likely to
//! hear each other; edges are weighted by the **cubed** centroid
//! distance so route planning strongly prefers short hops, the ones
//! most likely to have real AP coverage.

use citymesh_geo::Point;
use citymesh_graph::{connected_components, Graph};
use citymesh_map::CityMap;

/// Parameters for building-graph construction.
#[derive(Clone, Copy, Debug)]
pub struct BuildingGraphParams {
    /// Maximum footprint-to-footprint gap, meters, for a predicted
    /// link. The default is `0.8 ×` the transmission range: APs sit
    /// inside buildings, not on facing walls, so the usable range
    /// across a street is discounted.
    pub max_gap_m: f64,
    /// Exponent applied to the centroid distance for edge weights.
    /// The paper uses 3 (cubed); 1 and 2 are ablation settings.
    pub weight_exponent: f64,
}

impl BuildingGraphParams {
    /// The paper's defaults for a given transmission range.
    pub fn for_range(range_m: f64) -> Self {
        BuildingGraphParams {
            max_gap_m: 0.8 * range_m,
            weight_exponent: 3.0,
        }
    }
}

impl Default for BuildingGraphParams {
    fn default() -> Self {
        Self::for_range(crate::DEFAULT_RANGE_M)
    }
}

/// The predicted-connectivity graph over a city's buildings.
///
/// Wraps the generic [`Graph`] with the map-derived context route
/// planning needs (centroids for heuristics and conduit geometry).
#[derive(Clone, Debug)]
pub struct BuildingGraph {
    graph: Graph,
    centroids: Vec<Point>,
    params: BuildingGraphParams,
}

impl BuildingGraph {
    /// Builds the graph for `map`.
    ///
    /// Candidate pairs come from a spatial query (centroids within
    /// `max_gap + 2 × max building radius`), then the exact footprint
    /// gap decides. O(B · k) where k is the candidate count per
    /// building.
    pub fn build(map: &CityMap, params: BuildingGraphParams) -> Self {
        assert!(params.max_gap_m >= 0.0, "max_gap_m must be non-negative");
        assert!(
            params.weight_exponent > 0.0,
            "weight_exponent must be positive"
        );
        let n = map.len();
        let mut graph = Graph::new(n);
        let centroids: Vec<Point> = map.buildings().iter().map(|b| b.centroid).collect();

        // Conservative query radius: centroid distance can exceed the
        // footprint gap by both buildings' "radius" (bbox half-diagonal).
        let max_radius = map
            .buildings()
            .iter()
            .map(|b| {
                let bb = b.footprint.bbox();
                bb.width().hypot(bb.height()) / 2.0
            })
            .fold(0.0, f64::max);
        let query_r = params.max_gap_m + 2.0 * max_radius;

        for b in map.buildings() {
            for other_id in map.buildings_within(b.centroid, query_r) {
                // Each unordered pair once.
                if other_id <= b.id {
                    continue;
                }
                let other = map.building(other_id).expect("index yields valid ids");
                let gap = b.footprint.dist_to_polygon(&other.footprint);
                if gap <= params.max_gap_m {
                    let d = b.centroid.dist(other.centroid).max(1.0);
                    graph.add_edge(b.id, other_id, d.powf(params.weight_exponent));
                }
            }
        }

        BuildingGraph {
            graph,
            centroids,
            params,
        }
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Construction parameters.
    pub fn params(&self) -> BuildingGraphParams {
        self.params
    }

    /// Centroid of building `id`.
    pub fn centroid(&self, id: u32) -> Point {
        self.centroids[id as usize]
    }

    /// Number of buildings (vertices).
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Number of predicted links.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// `(component labels, component count)` over predicted links —
    /// how the *map* expects the city to fragment.
    pub fn components(&self) -> (Vec<u32>, usize) {
        connected_components(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_geo::{Polygon, Rect};
    use citymesh_map::CityMap;

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// Three buildings in a row, 20 m gaps, plus one isolated 500 m away.
    fn row_map() -> CityMap {
        CityMap::new(
            "row",
            vec![
                square_at(0.0, 0.0, 10.0),
                square_at(30.0, 0.0, 10.0),
                square_at(60.0, 0.0, 10.0),
                square_at(500.0, 0.0, 10.0),
            ],
            vec![],
        )
    }

    #[test]
    fn links_neighbors_within_gap() {
        let map = row_map();
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        assert_eq!(bg.len(), 4);
        // Adjacent pairs (gap 20) link; skip-one pairs (gap 50) do not.
        assert!(bg.graph().has_edge(0, 1));
        assert!(bg.graph().has_edge(1, 2));
        assert!(!bg.graph().has_edge(0, 2));
        assert_eq!(bg.graph().degree(3), 0, "distant building stays isolated");
        let (_, count) = bg.components();
        assert_eq!(count, 2);
    }

    #[test]
    fn weights_are_cubed_centroid_distance() {
        let map = row_map();
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        let e = bg
            .graph()
            .neighbors(0)
            .iter()
            .find(|e| e.to == 1)
            .expect("edge 0-1");
        // Centroid distance 30 m → weight 27000.
        assert!((e.weight - 27_000.0).abs() < 1e-6);
    }

    #[test]
    fn weight_exponent_ablation() {
        let map = row_map();
        let linear = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 1.0,
            },
        );
        let e = linear
            .graph()
            .neighbors(0)
            .iter()
            .find(|e| e.to == 1)
            .unwrap();
        assert!((e.weight - 30.0).abs() < 1e-6);
    }

    #[test]
    fn zero_gap_touching_buildings_link() {
        let map = CityMap::new(
            "touching",
            vec![square_at(0.0, 0.0, 10.0), square_at(10.0, 0.0, 10.0)],
            vec![],
        );
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 0.0,
                weight_exponent: 3.0,
            },
        );
        assert!(bg.graph().has_edge(0, 1));
        // Weight floor: centroid distance clamps at 1 m so zero-weight
        // edges cannot make Dijkstra prefer arbitrarily long chains.
        let e = bg.graph().neighbors(0)[0];
        assert!(e.weight >= 1.0);
    }

    #[test]
    fn synthetic_city_is_mostly_connected() {
        let map = citymesh_map::CityArchetype::SurveyDowntown.generate(1);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        assert!(
            bg.num_edges() > map.len(),
            "downtown should be densely linked"
        );
        let (labels, _) = bg.components();
        let mut sizes = std::collections::HashMap::new();
        for l in &labels {
            *sizes.entry(*l).or_insert(0usize) += 1;
        }
        let largest = sizes.values().copied().max().unwrap();
        assert!(
            largest as f64 / map.len() as f64 > 0.95,
            "downtown largest component covers {largest}/{}",
            map.len()
        );
    }

    #[test]
    fn empty_map_builds_empty_graph() {
        let map = CityMap::new("empty", vec![], vec![]);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        assert!(bg.is_empty());
        assert_eq!(bg.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "max_gap_m")]
    fn negative_gap_panics() {
        let map = row_map();
        BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: -1.0,
                weight_exponent: 3.0,
            },
        );
    }
}
