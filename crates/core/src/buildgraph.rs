//! The building graph: predicted inter-building connectivity.
//!
//! Built from footprints alone — no information from the network
//! (paper §3 step 2). Two buildings get an edge when the gap between
//! their footprints is small enough that APs inside them are likely to
//! hear each other; edges are weighted by the **cubed** centroid
//! distance so route planning strongly prefers short hops, the ones
//! most likely to have real AP coverage.

use citymesh_geo::Point;
use citymesh_graph::{connected_components, dijkstra, CsrGraph, Graph};
use citymesh_map::CityMap;

/// Number of ALT landmarks embedded in every building graph (fewer on
/// maps with fewer buildings). Eight is the classic sweet spot: the
/// per-relaxation heuristic cost is eight loads and compares, while
/// the corridor A* explores shrinks by an order of magnitude.
const NUM_LANDMARKS: usize = 8;

/// Parameters for building-graph construction.
#[derive(Clone, Copy, Debug)]
pub struct BuildingGraphParams {
    /// Maximum footprint-to-footprint gap, meters, for a predicted
    /// link. The default is `0.8 ×` the transmission range: APs sit
    /// inside buildings, not on facing walls, so the usable range
    /// across a street is discounted.
    pub max_gap_m: f64,
    /// Exponent applied to the centroid distance for edge weights.
    /// The paper uses 3 (cubed); 1 and 2 are ablation settings.
    pub weight_exponent: f64,
}

impl BuildingGraphParams {
    /// The paper's defaults for a given transmission range.
    pub fn for_range(range_m: f64) -> Self {
        BuildingGraphParams {
            max_gap_m: 0.8 * range_m,
            weight_exponent: 3.0,
        }
    }
}

impl Default for BuildingGraphParams {
    fn default() -> Self {
        Self::for_range(crate::DEFAULT_RANGE_M)
    }
}

/// The predicted-connectivity graph over a city's buildings.
///
/// Wraps a frozen [`CsrGraph`] with the map-derived context route
/// planning needs (centroids for heuristics and conduit geometry).
/// Construction goes through a growable [`Graph`] and freezes to CSR
/// before landmark embedding: at metro scale (100k+ buildings) the
/// per-vertex `Vec` fan-out would cost one allocation per building
/// and shred cache locality on the planning hot path.
#[derive(Clone, Debug)]
pub struct BuildingGraph {
    graph: CsrGraph,
    centroids: Vec<Point>,
    params: BuildingGraphParams,
    /// ALT landmark distances, vertex-major: `lm_dist[v * lm_count + k]`
    /// is the shortest-path cost from landmark `k` to building `v`
    /// (infinite across predicted islands).
    lm_dist: Vec<f64>,
    /// Number of landmarks actually embedded (≤ [`NUM_LANDMARKS`]).
    lm_count: usize,
}

impl BuildingGraph {
    /// Builds the graph for `map`.
    ///
    /// Candidate pairs come from a spatial query (centroids within
    /// `max_gap + 2 × max building radius`), then the exact footprint
    /// gap decides. O(B · k) where k is the candidate count per
    /// building.
    pub fn build(map: &CityMap, params: BuildingGraphParams) -> Self {
        assert!(params.max_gap_m >= 0.0, "max_gap_m must be non-negative");
        assert!(
            params.weight_exponent > 0.0,
            "weight_exponent must be positive"
        );
        let n = map.len();
        let mut graph = Graph::new(n);
        let centroids: Vec<Point> = map.buildings().iter().map(|b| b.centroid).collect();

        // Conservative query radius: centroid distance can exceed the
        // footprint gap by both buildings' "radius" (bbox half-diagonal).
        let max_radius = map
            .buildings()
            .iter()
            .map(|b| {
                let bb = b.footprint.bbox();
                bb.width().hypot(bb.height()) / 2.0
            })
            .fold(0.0, f64::max);
        let query_r = params.max_gap_m + 2.0 * max_radius;

        for b in map.buildings() {
            for other_id in map.buildings_within(b.centroid, query_r) {
                // Each unordered pair once.
                if other_id <= b.id {
                    continue;
                }
                let other = map.building(other_id).expect("index yields valid ids");
                let gap = b.footprint.dist_to_polygon(&other.footprint);
                if gap <= params.max_gap_m {
                    let d = b.centroid.dist(other.centroid).max(1.0);
                    graph.add_edge(b.id, other_id, d.powf(params.weight_exponent));
                }
            }
        }

        let graph = CsrGraph::from_graph(&graph);
        let (lm_dist, lm_count) = build_landmarks(&graph);
        BuildingGraph {
            graph,
            centroids,
            params,
            lm_dist,
            lm_count,
        }
    }

    /// An admissible lower bound on the cheapest route cost between
    /// `v` and `dst`, used as the A* heuristic by
    /// [`crate::route::plan_route`].
    ///
    /// The bound is the max of two estimates:
    ///
    /// * **ALT landmarks** — `|d(k, dst) − d(k, v)|` for each embedded
    ///   landmark `k`, by the triangle inequality over the *actual*
    ///   weight metric. This is the sharp one on cubed-distance graphs,
    ///   where straight-line distance wildly under-estimates cost.
    /// * **Euclidean** — the straight-line centroid distance, valid
    ///   only for weight exponents ≥ 1 (each edge then costs at least
    ///   its length `max(d, 1)^e ≥ d`); skipped otherwise.
    ///
    /// Both bounds only shrink when vertices are removed, so the same
    /// heuristic stays admissible for detour planning around blocked
    /// buildings.
    pub fn cost_lower_bound(&self, v: u32, dst: u32) -> f64 {
        let mut h = if self.params.weight_exponent >= 1.0 {
            self.centroids[v as usize].dist(self.centroids[dst as usize])
        } else {
            0.0
        };
        let k = self.lm_count;
        if k > 0 {
            let a = &self.lm_dist[v as usize * k..(v as usize + 1) * k];
            let b = &self.lm_dist[dst as usize * k..(dst as usize + 1) * k];
            for (dv, dt) in a.iter().zip(b) {
                // `inf − inf` is NaN (landmark sees neither endpoint);
                // `NaN > h` is false, so such landmarks contribute
                // nothing. A finite/infinite mix means the endpoints
                // sit on different islands, and `h = inf` is exact.
                let d = (dv - dt).abs();
                if d > h {
                    h = d;
                }
            }
        }
        h
    }

    /// The underlying weighted graph, in frozen CSR form.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Heap bytes held by the graph, centroids, and landmark tables —
    /// the metro sweep's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.centroids.capacity() * std::mem::size_of::<Point>()
            + self.lm_dist.capacity() * std::mem::size_of::<f64>()
    }

    /// Construction parameters.
    pub fn params(&self) -> BuildingGraphParams {
        self.params
    }

    /// Centroid of building `id`.
    pub fn centroid(&self, id: u32) -> Point {
        self.centroids[id as usize]
    }

    /// Number of buildings (vertices).
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Number of predicted links.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// `(component labels, component count)` over predicted links —
    /// how the *map* expects the city to fragment.
    pub fn components(&self) -> (Vec<u32>, usize) {
        connected_components(&self.graph)
    }
}

/// Selects up to [`NUM_LANDMARKS`] landmarks by farthest-point
/// sampling over the weight metric and returns their full distance
/// arrays flattened vertex-major, `(lm_dist, lm_count)`.
///
/// Selection is deterministic: vertex 0 seeds, then each round picks
/// the vertex maximizing its distance to the nearest chosen landmark
/// (first maximum wins, so ties break toward the smallest id).
/// Vertices on islands no landmark has reached look infinitely far,
/// so sampling naturally spreads landmarks across predicted islands
/// before refining within them.
fn build_landmarks(graph: &CsrGraph) -> (Vec<f64>, usize) {
    let n = graph.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let want = NUM_LANDMARKS.min(n);
    let mut per_landmark: Vec<Vec<f64>> = Vec::with_capacity(want);
    let mut chosen: Vec<u32> = Vec::with_capacity(want);
    let mut next = 0u32;
    while per_landmark.len() < want {
        chosen.push(next);
        per_landmark.push(dijkstra(graph, next).dist);
        let mut best: Option<(u32, f64)> = None;
        for v in 0..n as u32 {
            if chosen.contains(&v) {
                continue;
            }
            let dmin = per_landmark
                .iter()
                .map(|d| d[v as usize])
                .fold(f64::INFINITY, f64::min);
            if best.is_none_or(|(_, bd)| dmin > bd) {
                best = Some((v, dmin));
            }
        }
        match best {
            Some((v, _)) => next = v,
            None => break,
        }
    }
    let k = per_landmark.len();
    let mut flat = vec![0.0; n * k];
    for (ki, d) in per_landmark.iter().enumerate() {
        for v in 0..n {
            flat[v * k + ki] = d[v];
        }
    }
    (flat, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_geo::{Polygon, Rect};
    use citymesh_map::CityMap;

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// Three buildings in a row, 20 m gaps, plus one isolated 500 m away.
    fn row_map() -> CityMap {
        CityMap::new(
            "row",
            vec![
                square_at(0.0, 0.0, 10.0),
                square_at(30.0, 0.0, 10.0),
                square_at(60.0, 0.0, 10.0),
                square_at(500.0, 0.0, 10.0),
            ],
            vec![],
        )
    }

    #[test]
    fn links_neighbors_within_gap() {
        let map = row_map();
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        assert_eq!(bg.len(), 4);
        // Adjacent pairs (gap 20) link; skip-one pairs (gap 50) do not.
        assert!(bg.graph().has_edge(0, 1));
        assert!(bg.graph().has_edge(1, 2));
        assert!(!bg.graph().has_edge(0, 2));
        assert_eq!(bg.graph().degree(3), 0, "distant building stays isolated");
        let (_, count) = bg.components();
        assert_eq!(count, 2);
    }

    #[test]
    fn weights_are_cubed_centroid_distance() {
        let map = row_map();
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        let e = bg
            .graph()
            .neighbors(0)
            .iter()
            .find(|e| e.to == 1)
            .expect("edge 0-1");
        // Centroid distance 30 m → weight 27000.
        assert!((e.weight - 27_000.0).abs() < 1e-6);
    }

    #[test]
    fn weight_exponent_ablation() {
        let map = row_map();
        let linear = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 1.0,
            },
        );
        let e = linear
            .graph()
            .neighbors(0)
            .iter()
            .find(|e| e.to == 1)
            .unwrap();
        assert!((e.weight - 30.0).abs() < 1e-6);
    }

    #[test]
    fn zero_gap_touching_buildings_link() {
        let map = CityMap::new(
            "touching",
            vec![square_at(0.0, 0.0, 10.0), square_at(10.0, 0.0, 10.0)],
            vec![],
        );
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 0.0,
                weight_exponent: 3.0,
            },
        );
        assert!(bg.graph().has_edge(0, 1));
        // Weight floor: centroid distance clamps at 1 m so zero-weight
        // edges cannot make Dijkstra prefer arbitrarily long chains.
        let e = bg.graph().neighbors(0)[0];
        assert!(e.weight >= 1.0);
    }

    #[test]
    fn synthetic_city_is_mostly_connected() {
        let map = citymesh_map::CityArchetype::SurveyDowntown.generate(1);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        assert!(
            bg.num_edges() > map.len(),
            "downtown should be densely linked"
        );
        let (labels, _) = bg.components();
        let mut sizes = std::collections::HashMap::new();
        for l in &labels {
            *sizes.entry(*l).or_insert(0usize) += 1;
        }
        let largest = sizes.values().copied().max().unwrap();
        assert!(
            largest as f64 / map.len() as f64 > 0.95,
            "downtown largest component covers {largest}/{}",
            map.len()
        );
    }

    #[test]
    fn empty_map_builds_empty_graph() {
        let map = CityMap::new("empty", vec![], vec![]);
        let bg = BuildingGraph::build(&map, BuildingGraphParams::default());
        assert!(bg.is_empty());
        assert_eq!(bg.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "max_gap_m")]
    fn negative_gap_panics() {
        let map = row_map();
        BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: -1.0,
                weight_exponent: 3.0,
            },
        );
    }
}
