//! End-to-end experiment pipeline (paper §4).
//!
//! One [`CityExperiment`] owns everything a city run needs — the map,
//! a concrete AP placement, the ground-truth AP graph, and the
//! map-only building graph — and produces the three Figure-6 metrics:
//!
//! * **reachability** — fraction of random building pairs connected
//!   through the AP graph (1000 pairs in the paper);
//! * **deliverability** — among reachable pairs, fraction whose packet
//!   the building-routing algorithm actually delivers in the full
//!   event simulation (50 pairs in the paper);
//! * **transmission overhead** — broadcasts ÷ ideal-unicast hops
//!   (≈ 13× in the paper).
//!
//! plus the §4 header statistics (median / 90th-percentile compressed
//! route bits).

use std::sync::{Arc, RwLock};

use citymesh_geo::OrientedRect;
use citymesh_graph::{HierParams, PlannerScratch};
use citymesh_map::CityMap;
use citymesh_net::{CityMeshHeader, MAX_CONDUIT_WIDTH_M};
use citymesh_simcore::{split_seed, SimRng, SimTime};

use crate::agent::RebroadcastScope;
use crate::apgraph::ApGraph;
use crate::buildgraph::{BuildingGraph, BuildingGraphParams};
use crate::conduit::{
    compress_route, compress_route_into, reconstruct_conduits, reconstruct_conduits_into,
};
use crate::deploy::Deployment;
use crate::faults::{ApHealth, FaultScenario, FaultState, RecoveryStage, RetryPolicy};
use crate::hier::{HierPlanScratch, HierPlanner};
use crate::placement::{place_aps, postbox_ap, Ap};
use crate::route::{plan_route_avoiding, plan_route_avoiding_into, plan_route_into};
use crate::secure::{SecureState, TamperMode};
use crate::sim::{simulate_delivery_faulted, DeliveryParams, DeliveryScratch};
use citymesh_telemetry::{FlowSummary, TraceEvent};

/// Sub-stream domain for fault materialization (see [`crate::faults`]).
const DOMAIN_FAULTS: u64 = 0xFA17;

/// A rejected experiment or simulation parameter.
///
/// Carries the field path and the offending value so a config loaded
/// from the outside (CLI flags, sweep files) fails with a diagnosis
/// instead of a panic deep inside route compression.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// The value was NaN or infinite.
    NotFinite {
        /// Dotted field path.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value must be strictly positive.
    NotPositive {
        /// Dotted field path.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value fell outside its legal interval.
    OutOfRange {
        /// Dotted field path.
        field: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotFinite { field, value } => {
                write!(f, "{field} must be finite, got {value}")
            }
            ConfigError::NotPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "{field} must be within [{min}, {max}], got {value}"),
        }
    }
}

impl std::error::Error for ConfigError {}

fn require_finite(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(ConfigError::NotFinite { field, value })
    }
}

fn require_positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
    require_finite(field, value)?;
    if value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NotPositive { field, value })
    }
}

pub(crate) fn require_probability(field: &'static str, value: f64) -> Result<(), ConfigError> {
    require_finite(field, value)?;
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ConfigError::OutOfRange {
            field,
            value,
            min: 0.0,
            max: 1.0,
        })
    }
}

/// Experiment parameters (defaults mirror the paper's §4 setup).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Wi-Fi transmission range, meters.
    pub range_m: f64,
    /// Footprint m² per AP.
    pub m2_per_ap: f64,
    /// Conduit width `W`, meters.
    pub conduit_width_m: f64,
    /// Building-graph construction parameters.
    pub graph: BuildingGraphParams,
    /// Rebroadcast geometry policy.
    pub scope: RebroadcastScope,
    /// Per-frame reception loss probability (0 = the paper's
    /// idealized medium; nonzero for the robustness ablation).
    pub reception_loss: f64,
    /// Pairs sampled for reachability.
    pub reachability_pairs: usize,
    /// Pairs simulated for deliverability (among reachable ones).
    pub delivery_pairs: usize,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Optional fault scenario (AP outages, blackouts, degradation,
    /// map staleness) plus the sender's recovery ladder. `None` — the
    /// default — is the healthy world and leaves every RNG stream and
    /// fleet digest untouched.
    pub faults: Option<FaultScenario>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            range_m: crate::DEFAULT_RANGE_M,
            m2_per_ap: crate::DEFAULT_M2_PER_AP,
            conduit_width_m: crate::DEFAULT_CONDUIT_WIDTH_M,
            graph: BuildingGraphParams::for_range(crate::DEFAULT_RANGE_M),
            scope: RebroadcastScope::Building,
            reception_loss: 0.0,
            reachability_pairs: 1000,
            delivery_pairs: 50,
            seed: 0,
            faults: None,
        }
    }
}

impl ExperimentConfig {
    /// Validates every numeric field, rejecting NaN, infinities,
    /// non-positive widths/ranges/densities, probabilities outside
    /// [0, 1], widths the header cannot encode, and malformed fault
    /// scenarios. [`CityExperiment::try_prepare`] runs this before
    /// touching the map.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_positive("range_m", self.range_m)?;
        require_positive("m2_per_ap", self.m2_per_ap)?;
        require_positive("conduit_width_m", self.conduit_width_m)?;
        if self.conduit_width_m > MAX_CONDUIT_WIDTH_M {
            return Err(ConfigError::OutOfRange {
                field: "conduit_width_m",
                value: self.conduit_width_m,
                min: 0.1,
                max: MAX_CONDUIT_WIDTH_M,
            });
        }
        require_positive("graph.max_gap_m", self.graph.max_gap_m)?;
        require_finite("graph.weight_exponent", self.graph.weight_exponent)?;
        require_probability("reception_loss", self.reception_loss)?;
        if let Some(f) = &self.faults {
            f.validate()?;
        }
        Ok(())
    }
}

/// The deterministic, RNG-free part of one src→dst flow: the planned
/// route, its compressed waypoints, the header size, and the source
/// AP. Planning is a pure function of the prepared world, so a
/// `PlannedFlow` can be computed once and reused for every flow with
/// the same endpoints — this is what the fleet engine's shared route
/// cache stores.
#[derive(Clone, Debug)]
pub struct PlannedFlow {
    /// Source building.
    pub src: u32,
    /// Destination building.
    pub dst: u32,
    /// Ground truth: are the buildings connected through the AP graph?
    pub reachable: bool,
    /// Number of buildings on the planned route (0 when none).
    pub route_len: usize,
    /// Compressed waypoint buildings (empty when no route).
    pub waypoints: Vec<u32>,
    /// The conduit rectangles reconstructed from `waypoints` at the
    /// header's (decimeter-quantized) width — a pure function of
    /// (waypoints, width), so computing them once here lets every
    /// delivery simulation of this plan skip `reconstruct_conduits`,
    /// and the fleet's route cache amortizes them across all flows
    /// sharing the route. Empty when no route.
    pub conduits: Vec<OrientedRect>,
    /// Compressed source-route size in bits (0 when no route).
    pub route_bits: usize,
    /// The AP acting as the sender's uplink, when the source building
    /// has one.
    pub src_ap: Option<u32>,
    /// Ideal-unicast hop count from `src_ap` (ground truth), when
    /// reachable.
    pub ideal_hops: Option<u64>,
    /// The uncompressed primary route, kept only under a fault
    /// scenario: the lazy replan rung must compare its detour against
    /// the *route* (distinct routes can compress to identical
    /// waypoints, and the Replan-vs-Resend rung label feeds the fleet
    /// digest). Empty in the healthy world.
    replan_route: Vec<u32>,
    /// The designated site actually carrying the delivery when the
    /// destination's own postbox is dark and a [`crate::Deployment`]
    /// redirected the flow there (`None` otherwise — including always
    /// when no deployment is active, so the field is digest-inert for
    /// every pre-placement workload). `src`/`dst` keep the *requested*
    /// endpoints: they are the route-cache key, and cache invalidation
    /// reasons about them.
    redirect: Option<u32>,
    /// Retry-ladder geometry (widened conduits, replanned detour),
    /// materialized lazily the first time a simulation climbs to rung
    /// 3 — the healthy path, and every flow that delivers within two
    /// attempts, never pays for the ladder. The cell is interior
    /// mutability over a pure value *keyed by the fault-state epoch*:
    /// the replan detour depends on the current blocked set, so under
    /// world churn a plan kept across an epoch boundary transparently
    /// recomputes its ladder geometry on first escalation in the new
    /// epoch — making a cache-retained plan behaviorally identical to
    /// a freshly planned one. Concurrent workers may race to install a
    /// given epoch's variants, but every initializer computes the same
    /// value, so whichever wins is indistinguishable.
    recovery: RecoveryCell,
}

/// The epoch-keyed memo slot behind [`PlannedFlow::recovery`]: at most
/// one `(epoch, variants)` pair, replaced whenever a simulation
/// escalates under a newer fault-state epoch. Reads on the steady
/// state path are a lock-free-enough `RwLock` read + `Arc` clone —
/// both allocation-free, preserving the zero-alloc per-flow loop.
#[derive(Debug, Default)]
struct RecoveryCell(RwLock<Option<(u64, Arc<RecoveryVariants>)>>);

impl RecoveryCell {
    /// The memoized variants, if they were computed for `epoch`.
    fn get(&self, epoch: u64) -> Option<Arc<RecoveryVariants>> {
        match &*self.0.read().expect("recovery cell poisoned") {
            Some((e, rec)) if *e == epoch => Some(Arc::clone(rec)),
            _ => None,
        }
    }

    /// Installs `rec` for `epoch` unless a racing worker already did;
    /// returns whichever value ends up memoized (the values are equal
    /// by construction — recovery geometry is a pure function of the
    /// plan and the epoch's fault state).
    fn set(&self, epoch: u64, rec: Arc<RecoveryVariants>) -> Arc<RecoveryVariants> {
        let mut slot = self.0.write().expect("recovery cell poisoned");
        match &*slot {
            Some((e, cur)) if *e == epoch => Arc::clone(cur),
            _ => {
                *slot = Some((epoch, Arc::clone(&rec)));
                rec
            }
        }
    }

    /// Drops the memo (plan reuse across `(src, dst)` reassignment).
    fn clear(&self) {
        *self.0.write().expect("recovery cell poisoned") = None;
    }
}

impl Clone for RecoveryCell {
    fn clone(&self) -> Self {
        RecoveryCell(RwLock::new(
            self.0.read().expect("recovery cell poisoned").clone(),
        ))
    }
}

/// The retry ladder's precomputable geometry; see
/// [`PlannedFlow::recovery`].
#[derive(Clone, Debug, Default)]
struct RecoveryVariants {
    /// Width of the widened-conduit retry variant, meters (0 when the
    /// scenario's ladder never widens).
    wide_width_m: f64,
    /// Conduits of the widened variant: same waypoints, fatter
    /// rectangles, clamped to the header-encodable maximum.
    wide_conduits: Vec<OrientedRect>,
    /// Waypoints of the replanned detour around buildings with zero
    /// live APs (empty when the ladder never replans, the map is
    /// fresh, or no distinct detour exists).
    fallback_waypoints: Vec<u32>,
    /// Conduits of the replanned detour.
    fallback_conduits: Vec<OrientedRect>,
}

impl PlannedFlow {
    /// An empty, route-less plan for `src → dst` — the state
    /// [`CityExperiment::plan_flow_into`] starts from, and a buffer
    /// donor whose vectors it reuses.
    pub fn empty(src: u32, dst: u32) -> Self {
        PlannedFlow {
            src,
            dst,
            reachable: false,
            route_len: 0,
            waypoints: Vec::new(),
            conduits: Vec::new(),
            route_bits: 0,
            src_ap: None,
            ideal_hops: None,
            replan_route: Vec::new(),
            redirect: None,
            recovery: RecoveryCell::default(),
        }
    }

    /// Clears every field back to [`PlannedFlow::empty`] semantics
    /// while keeping the vector capacities for reuse.
    fn reset(&mut self, src: u32, dst: u32) {
        self.src = src;
        self.dst = dst;
        self.reachable = false;
        self.route_len = 0;
        self.waypoints.clear();
        self.conduits.clear();
        self.route_bits = 0;
        self.src_ap = None;
        self.ideal_hops = None;
        self.replan_route.clear();
        self.redirect = None;
        self.recovery.clear();
    }

    /// Whether planning produced a usable route.
    pub fn route_found(&self) -> bool {
        !self.waypoints.is_empty()
    }

    /// The uncompressed primary building route, kept only under a
    /// fault scenario (empty in the healthy world, where nothing needs
    /// it). The reactive-repair baseline walks this to locate the
    /// first blocked building after a failure notification.
    pub fn primary_route(&self) -> &[u32] {
        &self.replan_route
    }

    /// The building the route actually ends at: the designated
    /// fallback site when an active [`crate::Deployment`] redirected a
    /// dark destination's mail there, otherwise `dst` itself.
    pub fn delivery_dst(&self) -> u32 {
        self.redirect.unwrap_or(self.dst)
    }

    /// The designated site this flow was redirected to, when the
    /// destination's own postbox was dark under an active
    /// [`crate::Deployment`].
    pub fn redirect(&self) -> Option<u32> {
        self.redirect
    }
}

/// One src→dst delivery attempt, fully annotated.
#[derive(Clone, Debug, PartialEq)]
pub struct PairOutcome {
    /// Source building.
    pub src: u32,
    /// Destination building.
    pub dst: u32,
    /// Ground truth: are the buildings connected through the AP graph?
    pub reachable: bool,
    /// Did the building graph predict a route at all?
    pub route_found: bool,
    /// Number of buildings on the planned route (0 when none).
    pub route_len: usize,
    /// Number of waypoints after compression (0 when no route).
    pub waypoints: usize,
    /// Compressed source-route size in bits (0 when no route).
    pub route_bits: usize,
    /// Did the event simulation deliver the packet?
    pub delivered: bool,
    /// Broadcast count from the simulation.
    pub broadcasts: u64,
    /// Simulated first-delivery latency, when delivered.
    pub latency: Option<citymesh_simcore::SimTime>,
    /// Ideal-unicast hop count (ground truth), when reachable.
    pub ideal_hops: Option<u64>,
    /// Transmission overhead (broadcasts / ideal hops), when delivered.
    pub overhead: Option<f64>,
    /// Delivery attempts actually simulated: 1 in a fault-free run,
    /// up to [`RetryPolicy::max_attempts`] under faults, 0 when the
    /// flow never reached the simulator (no route or no live source
    /// AP).
    pub attempts: u32,
    /// The ladder rung that finally delivered, when delivery needed
    /// more than one attempt. `None` for first-try deliveries and for
    /// failures.
    pub recovered_by: Option<RecoveryStage>,
    /// Was the payload sealed under the secure message plane before
    /// transmission? Always `false` on the plaintext path
    /// ([`CityExperiment::simulate_flow_with`]).
    pub sealed: bool,
    /// Was the sealed payload delivered *and* opened successfully by
    /// the receiver (header tag and AEAD tag both verified)?
    pub opened: bool,
    /// Did receiver-side authentication fail (tampered header or
    /// ciphertext)? An auth failure forces `delivered: false` — a
    /// forged message is never a delivery.
    pub auth_failed: bool,
}

/// Aggregated per-city results.
#[derive(Clone, Debug)]
pub struct CityResult {
    /// City name.
    pub city: String,
    /// Building count.
    pub buildings: usize,
    /// AP count after placement.
    pub aps: usize,
    /// Mean AP-graph degree.
    pub mean_degree: f64,
    /// AP-graph connected components ("islands").
    pub components: usize,
    /// Fraction of sampled pairs reachable through the AP graph.
    pub reachability: f64,
    /// Fraction of simulated reachable pairs that were delivered.
    pub deliverability: f64,
    /// Median transmission overhead among delivered pairs.
    pub median_overhead: Option<f64>,
    /// Median first-delivery latency among delivered pairs, ms.
    pub median_latency_ms: Option<f64>,
    /// Median compressed-route size, bits.
    pub median_route_bits: Option<usize>,
    /// 90th-percentile compressed-route size, bits.
    pub p90_route_bits: Option<usize>,
    /// Every simulated pair, for deeper analysis.
    pub outcomes: Vec<PairOutcome>,
}

/// Reusable buffers for [`CityExperiment::plan_flow_into`]: the graph
/// search scratch (shared by route planning over the building graph
/// and the ideal-hops BFS over the AP graph — it grows to the larger
/// of the two), the uncompressed-route buffer, and a header used to
/// probe route bits without allocating a waypoint vector per plan.
/// One scratch per worker; a warm scratch plans with zero heap
/// allocations.
#[derive(Clone, Debug)]
pub struct PlanScratch {
    search: PlannerScratch,
    route: Vec<u32>,
    header: CityMeshHeader,
    /// Hierarchical-planner state, used only by
    /// [`CityExperiment::plan_flow_hier_into`]. Defaults empty, so
    /// flat-planning callers pay nothing for it.
    hier: HierPlanScratch,
}

impl PlanScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PlanScratch {
            search: PlannerScratch::new(),
            route: Vec::new(),
            hier: HierPlanScratch::new(),
            // Placeholder header; every plan overwrites it via
            // `reuse_for`. Owns no heap memory until first use.
            header: CityMeshHeader {
                kind: citymesh_net::MessageKind::Data,
                ttl: 64,
                msg_id: 0,
                conduit_width_dm: 0,
                waypoints: Vec::new(),
                encoding: citymesh_net::RouteEncoding::Absolute,
            },
        }
    }

    /// Cumulative hierarchical-planner counters accumulated by this
    /// scratch — what the fleet engine folds into worker metrics.
    /// All-zero unless [`CityExperiment::plan_flow_hier_into`] ran.
    pub fn hier_stats(&self) -> citymesh_graph::HierStats {
        self.hier.stats()
    }
}

impl Default for PlanScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary of one applied world event, returned by
/// [`CityExperiment::apply_world_event`]: what changed and the
/// world's new epoch. The fleet layer uses `touched_buildings` to
/// key incremental route-cache invalidation.
#[derive(Clone, Debug)]
pub struct EpochTransition {
    /// The epoch the world just entered (1 after the first event).
    pub epoch: u64,
    /// Number of APs whose health actually flipped (no-op changes in
    /// the event's list are skipped).
    pub aps_changed: usize,
    /// Buildings owning a flipped AP, sorted and deduplicated.
    pub touched_buildings: Vec<u32>,
    /// [`FaultState::fingerprint`] after the event — the per-epoch
    /// fingerprint churn experiments chain into their timeline digest.
    pub fingerprint: u64,
}

/// Summary of one [`CityExperiment::set_deployment`] call: what the
/// deployment change touched, in exactly the shape the churn-style
/// incremental route-cache invalidation predicate consumes. A plan is
/// stale iff its `src`/`dst` is in `epoch`'s touched buildings or in
/// `retargeted_buildings`, or its conduits contain an AP from
/// `changed_aps` — the same rule `citymesh-dynamics` proves
/// digest-equal to a full flush.
#[derive(Clone, Debug, Default)]
pub struct DeploymentTransition {
    /// The world-event transition from hardening/un-hardening site
    /// APs. `None` when the experiment has no fault state (healthy
    /// world: hardening is a no-op, only the fallback table moves) or
    /// when the site set did not change.
    pub epoch: Option<EpochTransition>,
    /// APs whose health the deployment change rewrote (hardened at new
    /// sites, restored at vacated ones), in site order.
    pub changed_aps: Vec<u32>,
    /// Buildings that are currently dark (no live postbox) and whose
    /// nearest designated site changed — exactly the destinations
    /// whose cached plans may carry a stale redirect. Sorted
    /// ascending.
    pub retargeted_buildings: Vec<u32>,
}

/// A prepared city: placement + graphs, ready to run pairs.
#[derive(Clone, Debug)]
pub struct CityExperiment {
    map: CityMap,
    aps: Vec<Ap>,
    apg: ApGraph,
    bg: BuildingGraph,
    config: ExperimentConfig,
    /// Materialized fault scenario, when the config carries one.
    /// Drawn serially at preparation time from a dedicated sub-stream
    /// of the seed, so it is identical no matter how many workers
    /// later share this experiment.
    faults: Option<FaultState>,
    /// Per-building postbox AP (closest AP to the centroid), healthy
    /// world — `postbox_ap` precomputed for every building so each
    /// plan does an O(1) lookup instead of an O(APs) scan.
    postbox: Vec<Option<u32>>,
    /// Per-building *live* postbox AP under the fault state (closest
    /// surviving AP); empty when no scenario is active. Rebuilt
    /// whenever the fault state changes.
    postbox_live: Vec<Option<u32>>,
    /// District-overlay planner, built on demand by
    /// [`CityExperiment::enable_hier`]. `None` means
    /// [`CityExperiment::plan_flow_hier_into`] is unavailable; the flat
    /// path never consults it.
    hier: Option<HierPlanner>,
    /// Active hardened-site deployment, installed by
    /// [`CityExperiment::set_deployment`]. `None` — the default —
    /// leaves every plan, RNG stream, and digest untouched.
    deployment: Option<Deployment>,
    /// Per-building nearest designated site (by centroid distance,
    /// lowest building id on ties) for the active deployment; empty
    /// when none. Consulted only for buildings whose own postbox is
    /// dark.
    fallback_site: Vec<Option<u32>>,
    /// Per-AP health as scenario materialization (plus any churn
    /// applied before the first deployment) drew it, captured the
    /// first time a deployment hardens a site so a later
    /// [`CityExperiment::set_deployment`] can restore a vacated
    /// site's APs to their un-hardened state.
    pristine_health: Option<Vec<ApHealth>>,
    /// Secure message plane, installed by
    /// [`CityExperiment::enable_encryption`]. `None` — the default —
    /// leaves every plan, RNG stream, and digest untouched; `Some`
    /// makes [`CityExperiment::simulate_flow_secure_with`] available.
    /// Behind an `Arc` so experiment clones (the stream engine's
    /// degraded twin) share one key registry and one warm session
    /// cache.
    secure: Option<Arc<SecureState>>,
}

impl CityExperiment {
    /// Places APs and builds both graphs for `map`.
    ///
    /// # Panics
    /// Panics on an invalid config ([`ExperimentConfig::validate`]);
    /// use [`CityExperiment::try_prepare`] for a graceful failure.
    pub fn prepare(map: CityMap, config: ExperimentConfig) -> Self {
        Self::try_prepare(map, config).unwrap_or_else(|e| panic!("invalid ExperimentConfig: {e}"))
    }

    /// [`CityExperiment::prepare`] with config validation surfaced as
    /// a value instead of a panic.
    pub fn try_prepare(map: CityMap, config: ExperimentConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut placement_rng = SimRng::new(split_seed(config.seed, 0xA9));
        let aps = place_aps(&map, config.m2_per_ap, &mut placement_rng);
        Ok(Self::from_parts(map, aps, config))
    }

    /// Builds both graphs over a caller-supplied placement — used when
    /// the placement must be preserved across map edits (e.g. after
    /// [`crate::apply_bridges`] + [`crate::bridge::extend_placement`]).
    ///
    /// # Panics
    /// Panics when any AP references a building outside the map or the
    /// config is invalid.
    pub fn from_parts(map: CityMap, aps: Vec<Ap>, config: ExperimentConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ExperimentConfig: {e}"));
        assert!(
            aps.iter().all(|a| (a.building as usize) < map.len()),
            "AP references a building outside the map"
        );
        let apg = ApGraph::build(&aps, config.range_m);
        let bg = BuildingGraph::build(&map, config.graph);
        let faults = config.faults.map(|sc| {
            FaultState::materialize(&sc, &aps, &map, split_seed(config.seed, DOMAIN_FAULTS))
        });
        let postbox = (0..map.len())
            .map(|b| postbox_ap(&aps, &map, b as u32))
            .collect();
        let postbox_live = live_postbox_table(&map, &aps, faults.as_ref());
        CityExperiment {
            map,
            aps,
            apg,
            bg,
            config,
            faults,
            postbox,
            postbox_live,
            hier: None,
            deployment: None,
            fallback_site: Vec::new(),
            pristine_health: None,
            secure: None,
        }
    }

    /// The materialized fault state, when the config carries a
    /// scenario.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Replaces the fault state with a caller-built one — the targeted
    /// what-if path (e.g. [`FaultState::with_failed`] killing exactly
    /// the destination's APs), bypassing scenario materialization.
    ///
    /// # Panics
    /// Panics when `state` does not cover exactly this experiment's
    /// APs.
    pub fn with_fault_state(mut self, state: FaultState) -> Self {
        assert_eq!(
            state.len(),
            self.aps.len(),
            "fault state covers {} APs but the experiment has {}",
            state.len(),
            self.aps.len()
        );
        self.faults = Some(state);
        self.postbox_live = live_postbox_table(&self.map, &self.aps, self.faults.as_ref());
        // A caller-built fault state supersedes any hardening a prior
        // deployment applied; drop the deployment so the world holds
        // exactly the state the caller handed in.
        self.deployment = None;
        self.fallback_site = Vec::new();
        self.pristine_health = None;
        self
    }

    /// Applies one churn event's materialized health changes to the
    /// live world and advances the fault-state epoch: per-AP health
    /// flips land first, then the derived per-building state — blocked
    /// set membership and live postbox AP — is refreshed for exactly
    /// the touched buildings (the incremental counterpart of the full
    /// `live_postbox_table` scan done at preparation time).
    ///
    /// Everything downstream keys off the epoch: plans cached across
    /// the boundary recompute their lazy ladder geometry on first
    /// escalation, so a kept plan is behaviorally identical to a
    /// freshly planned one. The change list comes from a materialized
    /// event timeline (`citymesh-dynamics`), which is worker-count
    /// independent — so applying it between parallel epochs preserves
    /// the engine's digest invariance.
    ///
    /// # Panics
    /// Panics when the experiment carries no fault state (prepare with
    /// a scenario — the null [`FaultScenario::default`] is enough — or
    /// attach one via [`CityExperiment::with_fault_state`]).
    pub fn apply_world_event(&mut self, changes: &[(u32, ApHealth)]) -> EpochTransition {
        let faults = self
            .faults
            .as_mut()
            .expect("apply_world_event requires a fault state; prepare with a scenario");
        let mut touched = Vec::new();
        let aps_changed = faults.apply_health(changes, &self.aps, &mut touched);
        for &b in &touched {
            faults.refresh_building(b, self.apg.aps_of_building(b));
            self.postbox_live[b as usize] = faults.postbox_ap_live(&self.aps, &self.map, b);
        }
        let epoch = faults.advance_epoch();
        EpochTransition {
            epoch,
            aps_changed,
            touched_buildings: touched,
            fingerprint: faults.fingerprint(),
        }
    }

    /// Installs (or removes, with `None`) a hardened-site
    /// [`Deployment`] and returns what changed.
    ///
    /// Two effects, both strictly opt-in:
    ///
    /// * **fault layer** — every AP in a designated building is forced
    ///   [`ApHealth::Up`] (hardened sites survive blackout/battery
    ///   scenarios), applied through
    ///   [`CityExperiment::apply_world_event`] so the blocked set,
    ///   live-postbox table, and fault-state epoch stay coherent and
    ///   cached plans recompute their lazy ladder geometry. Vacated
    ///   sites are restored to the health the scenario originally drew
    ///   for them. No-op in the healthy world.
    /// * **planner** — a per-building nearest-site table is rebuilt;
    ///   [`CityExperiment::plan_flow_into`] consults it via
    ///   [`CityExperiment::delivery_target`] to redirect mail for a
    ///   building with no live postbox to its nearest designated site
    ///   (the site's postbox holds it, as the paper's postboxes hold
    ///   sealed messages for offline recipients).
    ///
    /// Calling this repeatedly with different deployments is the
    /// optimizer's move loop: each call applies only the *diff*
    /// against the previous deployment, and the returned
    /// [`DeploymentTransition`] carries exactly what a route cache
    /// must invalidate.
    ///
    /// # Panics
    /// Panics when a site id is outside the map.
    pub fn set_deployment(&mut self, deployment: Option<Deployment>) -> DeploymentTransition {
        if let Some(d) = &deployment {
            assert!(
                d.sites().iter().all(|&b| (b as usize) < self.map.len()),
                "deployment site outside the map"
            );
        }
        let mut changes: Vec<(u32, ApHealth)> = Vec::new();
        if let Some(st) = &self.faults {
            if self.pristine_health.is_none() {
                self.pristine_health = Some((0..st.len() as u32).map(|ap| st.health(ap)).collect());
            }
            let pristine = self.pristine_health.as_ref().expect("captured above");
            let old: &[u32] = self.deployment.as_ref().map(|d| d.sites()).unwrap_or(&[]);
            let new: &[u32] = deployment.as_ref().map(|d| d.sites()).unwrap_or(&[]);
            for &b in old {
                if new.binary_search(&b).is_err() {
                    for &ap in self.apg.aps_of_building(b) {
                        changes.push((ap, pristine[ap as usize]));
                    }
                }
            }
            for &b in new {
                if old.binary_search(&b).is_err() {
                    for &ap in self.apg.aps_of_building(b) {
                        changes.push((ap, ApHealth::Up));
                    }
                }
            }
        }
        let epoch = (!changes.is_empty()).then(|| self.apply_world_event(&changes));
        let old_fallback = std::mem::take(&mut self.fallback_site);
        self.deployment = deployment;
        self.fallback_site = match &self.deployment {
            Some(d) => fallback_site_table(&self.map, d.sites()),
            None => Vec::new(),
        };
        // Only destinations that are dark *now* consult the fallback
        // table; buildings whose liveness itself flipped are already in
        // the epoch transition's touched set.
        let mut retargeted = Vec::new();
        for b in 0..self.map.len() {
            let old_t = old_fallback.get(b).copied().flatten();
            let new_t = self.fallback_site.get(b).copied().flatten();
            if old_t != new_t && self.postbox_for(b as u32).is_none() {
                retargeted.push(b as u32);
            }
        }
        DeploymentTransition {
            epoch,
            changed_aps: changes.iter().map(|&(ap, _)| ap).collect(),
            retargeted_buildings: retargeted,
        }
    }

    /// The active hardened-site deployment, when one is installed.
    pub fn deployment(&self) -> Option<&Deployment> {
        self.deployment.as_ref()
    }

    /// The building's postbox AP in the world currently in effect:
    /// the live table under a fault state, the healthy table otherwise.
    fn postbox_for(&self, building: u32) -> Option<u32> {
        match &self.faults {
            Some(_) => self.postbox_live[building as usize],
            None => self.postbox[building as usize],
        }
    }

    /// Where mail addressed to `dst` is actually delivered: `dst`
    /// itself when its postbox is live (or no deployment is active),
    /// otherwise the nearest designated site of the active
    /// [`Deployment`]. Pure in the prepared world, so redirected plans
    /// remain cacheable by their requested `(src, dst)`.
    pub fn delivery_target(&self, dst: u32) -> u32 {
        if self.deployment.is_none() || self.postbox_for(dst).is_some() {
            return dst;
        }
        self.fallback_site[dst as usize].unwrap_or(dst)
    }

    /// The city map.
    pub fn map(&self) -> &CityMap {
        &self.map
    }

    /// The AP placement.
    pub fn aps(&self) -> &[Ap] {
        &self.aps
    }

    /// The ground-truth AP graph.
    pub fn ap_graph(&self) -> &ApGraph {
        &self.apg
    }

    /// The map-derived building graph.
    pub fn building_graph(&self) -> &BuildingGraph {
        &self.bg
    }

    /// Builds the district-overlay planner so
    /// [`CityExperiment::plan_flow_hier_into`] becomes available.
    /// This is the one-time prepare-phase cost of hierarchical
    /// planning (partitioning, border discovery, overlay arcs,
    /// landmarks); queries afterwards allocate nothing. Idempotent in
    /// effect: rebuilding with the same params yields an identical
    /// planner.
    pub fn enable_hier(&mut self, params: &HierParams) {
        self.hier = Some(HierPlanner::build(&self.bg, params));
    }

    /// The district-overlay planner, when
    /// [`CityExperiment::enable_hier`] has run.
    pub fn hier_planner(&self) -> Option<&HierPlanner> {
        self.hier.as_ref()
    }

    /// Installs the secure message plane: a deterministic per-building
    /// keypair registry (drawn from the [`DOMAIN_KEYS`] sub-stream of
    /// the experiment seed, so identical across workers and reruns)
    /// plus an empty per-pair session-key cache. This is the one-time
    /// prepare-phase cost of encryption; per-pair key derivation
    /// afterwards is amortized by the cache, and per-message sealing is
    /// symmetric-only. Makes
    /// [`CityExperiment::simulate_flow_secure_with`] available.
    ///
    /// Strictly opt-in: never calling this leaves every RNG stream,
    /// plan field, and digest bit-identical to a pre-encryption build.
    ///
    /// [`DOMAIN_KEYS`]: crate::secure::DOMAIN_KEYS
    pub fn enable_encryption(&mut self) {
        self.secure = Some(Arc::new(SecureState::new(self.config.seed, self.map.len())));
    }

    /// The secure message plane, when
    /// [`CityExperiment::enable_encryption`] has run. Clones of this
    /// experiment share the same state (same registry, same warm
    /// cache).
    pub fn secure_state(&self) -> Option<&Arc<SecureState>> {
        self.secure.as_ref()
    }

    /// Rotates one building's keypair — the key-material analogue of a
    /// churn event — evicting every cached session that touches it.
    /// Returns the number of sessions evicted.
    ///
    /// # Panics
    /// Panics when [`CityExperiment::enable_encryption`] has not run.
    pub fn rotate_keys(&self, building: u32) -> usize {
        self.secure
            .as_ref()
            .expect("CityExperiment::rotate_keys requires enable_encryption")
            .rotate_keys(building)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Samples `n` distinct source/destination building pairs.
    pub fn sample_pairs(&self, n: usize, rng: &mut SimRng) -> Vec<(u32, u32)> {
        let b = self.map.len() as u64;
        if b < 2 {
            return Vec::new();
        }
        let mut pairs = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut guard = 0;
        while pairs.len() < n && guard < n * 20 {
            guard += 1;
            let src = rng.below(b) as u32;
            let dst = rng.below(b) as u32;
            if src != dst && seen.insert((src, dst)) {
                pairs.push((src, dst));
            }
        }
        pairs
    }

    /// Ground-truth reachability for one pair.
    pub fn reachable(&self, src: u32, dst: u32) -> bool {
        self.apg.buildings_reachable(src, dst)
    }

    /// The RNG-free planning half of a flow: route, compression,
    /// header size, source AP, and ideal-hops ground truth.
    ///
    /// Pure in the prepared world, so results are safely shareable
    /// across threads and cacheable by `(src, dst)`.
    /// Convenience wrapper over
    /// [`CityExperiment::plan_flow_into`] that allocates one-shot
    /// buffers; planner loops (and the fleet's cache-miss path) hold a
    /// [`PlanScratch`] and call `plan_flow_into` directly.
    pub fn plan_flow(&self, src: u32, dst: u32) -> PlannedFlow {
        let mut scratch = PlanScratch::new();
        let mut plan = PlannedFlow::empty(src, dst);
        self.plan_flow_into(src, dst, &mut scratch, &mut plan);
        plan
    }

    /// The RNG-free planning half of a flow against caller-owned
    /// buffers: resets `plan` and fills it in place, reusing both its
    /// vectors and `scratch`'s search state, so a warm caller plans
    /// with **zero heap allocations** (asserted by the counting
    /// allocator in `crates/fleet/tests/zero_alloc.rs`). Produces
    /// exactly the plan [`CityExperiment::plan_flow`] returns — the
    /// allocating entry point is a wrapper over this kernel.
    pub fn plan_flow_into(
        &self,
        src: u32,
        dst: u32,
        scratch: &mut PlanScratch,
        plan: &mut PlannedFlow,
    ) {
        plan.reset(src, dst);
        // Mail for a dark destination is carried to its nearest
        // designated site when a deployment is active; `target == dst`
        // always when none is (the pre-placement fast path).
        let target = self.delivery_target(dst);
        plan.redirect = (target != dst).then_some(target);
        plan.reachable = self.reachable(src, target);
        let faults = self.faults.as_ref();
        // Plan over the map the sender believes in: the cached
        // pre-disaster graph when the map is stale (the paper's
        // static-map assumption under stress), the surviving graph —
        // dark buildings avoided — when it is fresh.
        let routed = match faults {
            Some(f) if !f.stale_map() => plan_route_avoiding_into(
                &self.bg,
                src,
                target,
                f.blocked_buildings(),
                &mut scratch.search,
                &mut scratch.route,
            ),
            _ => plan_route_into(
                &self.bg,
                src,
                target,
                &mut scratch.search,
                &mut scratch.route,
            ),
        };
        if routed.is_err() {
            return;
        }
        self.finish_plan(src, target, scratch, plan);
    }

    /// Hierarchical counterpart of [`CityExperiment::plan_flow_into`]:
    /// identical plan semantics, but the route comes from the district
    /// overlay (sublinear in city size) instead of the flat ALT/A*
    /// search. Because hierarchical routes are cost-optimal with the
    /// same canonical tie-break, downstream state — compression,
    /// conduits, header bits — is computed by exactly the same code.
    ///
    /// Route-cache keys are unaffected: plans remain keyed by
    /// `(src, dst)` and the planner choice is engine configuration.
    ///
    /// # Panics
    /// Panics when [`CityExperiment::enable_hier`] has not run.
    pub fn plan_flow_hier_into(
        &self,
        src: u32,
        dst: u32,
        scratch: &mut PlanScratch,
        plan: &mut PlannedFlow,
    ) {
        let planner = self
            .hier
            .as_ref()
            .expect("plan_flow_hier_into requires CityExperiment::enable_hier");
        plan.reset(src, dst);
        let target = self.delivery_target(dst);
        plan.redirect = (target != dst).then_some(target);
        plan.reachable = self.reachable(src, target);
        let faults = self.faults.as_ref();
        let routed = match faults {
            Some(f) if !f.stale_map() => planner.plan_route_avoiding_into(
                &self.bg,
                src,
                target,
                f.blocked_buildings(),
                &mut scratch.hier,
                &mut scratch.route,
            ),
            _ => planner.plan_route_into(
                &self.bg,
                src,
                target,
                &mut scratch.hier,
                &mut scratch.route,
            ),
        };
        if routed.is_err() {
            return;
        }
        self.finish_plan(src, target, scratch, plan);
    }

    /// The planner-independent tail of flow planning: compression,
    /// header probing, source-AP lookup, ideal hops, conduit
    /// reconstruction. `scratch.route` holds the routed buildings;
    /// `target` is the delivery target (the redirect site when a
    /// deployment rerouted a dark destination, `plan.dst` otherwise).
    fn finish_plan(
        &self,
        src: u32,
        target: u32,
        scratch: &mut PlanScratch,
        plan: &mut PlannedFlow,
    ) {
        let faults = self.faults.as_ref();
        plan.route_len = scratch.route.len();
        compress_route_into(
            &self.bg,
            &scratch.route,
            self.config.conduit_width_m,
            &mut plan.waypoints,
        )
        .expect("config width validated at prepare time; route is non-empty");
        // Header size depends only on the waypoints and width; probe it
        // with a placeholder message id (route bits exclude the id).
        scratch
            .header
            .reuse_for(0, self.config.conduit_width_m, &plan.waypoints);
        plan.route_bits = scratch.header.route_bits();
        // Under faults the sender's uplink is the surviving postbox
        // AP: closest live AP to the centroid, `None` when the source
        // building is dark (the flow then fails cleanly, unsimulated).
        // Both lookups hit the tables precomputed at preparation time.
        plan.src_ap = match faults {
            Some(_) => self.postbox_live[src as usize],
            None => self.postbox[src as usize],
        };
        if let Some(src_ap) = plan.src_ap {
            plan.ideal_hops =
                self.apg
                    .ideal_hops_to_building_with(src_ap, target, &mut scratch.search);
        }
        // Conduits are what every relaying AP reconstructs from the
        // header; using the header's round-tripped width keeps them
        // bit-identical to a relay-side reconstruction.
        reconstruct_conduits_into(
            &self.map,
            &plan.waypoints,
            scratch.header.conduit_width_m(),
            &mut plan.conduits,
        );
        // Keep the uncompressed route for the lazy replan rung's
        // detour comparison; the ladder geometry itself is deferred
        // until a simulation actually climbs that far.
        if faults.is_some() {
            plan.replan_route.extend_from_slice(&scratch.route);
        }
    }

    /// Materializes the retry ladder's geometry for `plan`, computing
    /// it at most once per plan *per fault-state epoch* (the result is
    /// memoized in the plan's [`RecoveryCell`], keyed by
    /// [`FaultState::epoch`]). Called lazily from the simulation loop
    /// the first time a flow escalates to rung 3, so plans that
    /// deliver within two attempts — and the entire healthy world —
    /// never pay for widened conduits or a replanned detour. Under
    /// churn, a plan kept in the route cache across an epoch boundary
    /// recomputes here on its first post-event escalation, because the
    /// replan detour depends on the *current* blocked set — this is
    /// what makes incremental cache invalidation digest-equal to a
    /// full flush.
    fn recovery_variants(&self, plan: &PlannedFlow, faults: &FaultState) -> Arc<RecoveryVariants> {
        let epoch = faults.epoch();
        if let Some(rec) = plan.recovery.get(epoch) {
            return rec;
        }
        let rec = Arc::new(self.compute_recovery(plan, faults));
        plan.recovery.set(epoch, rec)
    }

    /// The pure computation behind [`CityExperiment::recovery_variants`]:
    /// widen-rung conduits and the replan-rung detour for `plan` under
    /// the current fault state.
    fn compute_recovery(&self, plan: &PlannedFlow, faults: &FaultState) -> RecoveryVariants {
        let mut rec = RecoveryVariants::default();
        let policy = faults.retry();
        // Widen rung: same waypoints, fatter conduits, clamped to
        // the header-encodable width.
        if policy.max_attempts >= 3 && policy.widen_factor > 1.0 {
            let w = (self.config.conduit_width_m * policy.widen_factor).min(MAX_CONDUIT_WIDTH_M);
            let wide_header = CityMeshHeader::new(0, w, plan.waypoints.clone());
            rec.wide_width_m = wide_header.conduit_width_m();
            rec.wide_conduits =
                reconstruct_conduits(&self.map, &wide_header.waypoints, rec.wide_width_m);
        }
        // Replan rung: detour around buildings with zero live APs.
        // Only meaningful when the primary plan was drawn on a
        // stale map and a genuinely different detour survives. The
        // comparison runs against the *uncompressed* primary route
        // the plan kept for exactly this purpose.
        if policy.max_attempts >= 4 && faults.stale_map() && !faults.blocked_buildings().is_empty()
        {
            let Ok(detour) = plan_route_avoiding(
                &self.bg,
                plan.src,
                plan.delivery_dst(),
                faults.blocked_buildings(),
            ) else {
                return rec;
            };
            if detour == plan.replan_route {
                return rec;
            }
            let Ok(c) = compress_route(&self.bg, &detour, self.config.conduit_width_m) else {
                return rec;
            };
            let h = CityMeshHeader::new(0, self.config.conduit_width_m, c.waypoints);
            rec.fallback_conduits =
                reconstruct_conduits(&self.map, &h.waypoints, h.conduit_width_m());
            rec.fallback_waypoints = h.waypoints;
        }
        rec
    }

    /// The stochastic half of a flow: drives the event simulation over
    /// an existing plan and scores the outcome.
    ///
    /// Convenience wrapper around [`CityExperiment::simulate_flow_with`]
    /// that allocates a one-shot [`DeliveryScratch`]; loops should hold
    /// a scratch and call `simulate_flow_with` directly.
    ///
    /// `run_pair` is `plan_flow` + `simulate_flow`; the fleet engine
    /// calls them separately so hotspot destinations replan once.
    pub fn simulate_flow(&self, plan: &PlannedFlow, msg_id: u64, rng: &mut SimRng) -> PairOutcome {
        let mut scratch = DeliveryScratch::new();
        self.simulate_flow_with(plan, msg_id, rng, &mut scratch)
    }

    /// [`CityExperiment::simulate_flow`] against caller-owned scratch
    /// state: the allocation-free steady-state path the fleet engine
    /// runs with one scratch per worker. Reuses the scratch's header
    /// (only the message id varies per flow) and the plan's cached
    /// conduits, so a warmed scratch executes a flow with zero heap
    /// allocations. Bit-identical to `simulate_flow`.
    ///
    /// Under a fault scenario this is also where graceful degradation
    /// happens: a failed delivery escalates through the scenario's
    /// [`RetryPolicy`] ladder — re-send, widened conduit, replanned
    /// detour — each rung riding geometry the plan precomputed, so
    /// retries stay on the zero-allocation path. Each failed attempt
    /// charges one full delivery horizon of latency (the sender only
    /// learns of failure at its timeout).
    ///
    /// When the scratch was built with tracing
    /// ([`DeliveryScratch::with_tracing`]) this is also the flow
    /// tracer's driver: it opens the flow (keyed by `msg_id` unless
    /// the caller pre-set a key), records the plan and every ladder
    /// attempt, and closes the flow with its outcome — all observation
    /// only, so results and RNG draws are bit-identical with tracing
    /// on or off.
    pub fn simulate_flow_with(
        &self,
        plan: &PlannedFlow,
        msg_id: u64,
        rng: &mut SimRng,
        scratch: &mut DeliveryScratch,
    ) -> PairOutcome {
        scratch.tracer.begin_flow(msg_id);
        scratch.tracer.record(TraceEvent::Plan {
            src: plan.src,
            dst: plan.dst,
            route_len: plan.route_len as u32,
            waypoints: plan.waypoints.len() as u32,
            route_bits: plan.route_bits as u32,
            conduits: plan.conduits.len() as u32,
        });
        let mut outcome = PairOutcome {
            src: plan.src,
            dst: plan.dst,
            reachable: plan.reachable,
            route_found: plan.route_found(),
            route_len: plan.route_len,
            waypoints: plan.waypoints.len(),
            route_bits: plan.route_bits,
            delivered: false,
            broadcasts: 0,
            latency: None,
            ideal_hops: plan.ideal_hops,
            overhead: None,
            attempts: 0,
            recovered_by: None,
            sealed: false,
            opened: false,
            auth_failed: false,
        };
        if !plan.route_found() {
            finish_flow_trace(scratch, &outcome);
            return outcome;
        }
        let Some(src_ap) = plan.src_ap else {
            finish_flow_trace(scratch, &outcome);
            return outcome;
        };
        let faults = self.faults.as_ref();
        let policy = faults.map(|f| f.retry()).unwrap_or_else(RetryPolicy::none);
        let params = DeliveryParams {
            scope: self.config.scope,
            reception_loss: self.config.reception_loss,
            ..DeliveryParams::default()
        };
        // Borrow juggling: the kernel needs `&mut scratch` while
        // reading the header, so lift the header out (the placeholder
        // left behind owns no heap memory) and restore it after.
        let mut header = std::mem::replace(
            &mut scratch.header,
            CityMeshHeader {
                kind: citymesh_net::MessageKind::Data,
                ttl: 64,
                msg_id: 0,
                conduit_width_dm: 0,
                waypoints: Vec::new(),
                encoding: citymesh_net::RouteEncoding::Absolute,
            },
        );
        let mut attempts = 0u32;
        let mut total_broadcasts = 0u64;
        let mut penalty = SimTime::ZERO;
        // Holds the plan's ladder geometry across the borrow into the
        // rung-selection match: `recovery_variants` hands back an
        // `Arc`, and the chosen conduit slice must outlive the match.
        let mut rec_holder: Option<Arc<RecoveryVariants>> = None;
        loop {
            attempts += 1;
            // Rung selection: 1 → first send, 2 → re-send, 3 → widen,
            // 4+ → replan; rungs without geometry degrade to a re-send
            // so the ladder is always bounded by `max_attempts`.
            // Reaching rung 3 is what materializes the lazy ladder
            // geometry; attempts only exceed 1 under a fault scenario,
            // so `faults` is always present here.
            let resend = || {
                (
                    RecoveryStage::Resend,
                    &plan.waypoints[..],
                    &plan.conduits[..],
                    self.config.conduit_width_m,
                )
            };
            let (stage, waypoints, conduits, width): (RecoveryStage, &[u32], &[OrientedRect], f64) =
                match (attempts, faults) {
                    (1, _) => (
                        RecoveryStage::First,
                        &plan.waypoints,
                        &plan.conduits,
                        self.config.conduit_width_m,
                    ),
                    (3, Some(f)) => {
                        let rec = rec_holder.insert(self.recovery_variants(plan, f));
                        if rec.wide_conduits.is_empty() {
                            resend()
                        } else {
                            (
                                RecoveryStage::Widen,
                                &plan.waypoints,
                                &rec.wide_conduits,
                                rec.wide_width_m,
                            )
                        }
                    }
                    (n, Some(f)) if n >= 4 => {
                        let rec = rec_holder.insert(self.recovery_variants(plan, f));
                        if rec.fallback_conduits.is_empty() {
                            resend()
                        } else {
                            (
                                RecoveryStage::Replan,
                                &rec.fallback_waypoints,
                                &rec.fallback_conduits,
                                self.config.conduit_width_m,
                            )
                        }
                    }
                    _ => resend(),
                };
            header.reuse_for(msg_id, width, waypoints);
            scratch.tracer.record(TraceEvent::Attempt {
                attempt: attempts,
                rung: stage.rung(),
                width_dm: u32::from(header.conduit_width_dm),
                conduits: conduits.len() as u32,
            });
            let (delivered, first_delivery, broadcasts) = {
                let report = simulate_delivery_faulted(
                    &self.map, &self.apg, &header, conduits, src_ap, params, faults, rng, scratch,
                );
                (report.delivered, report.first_delivery, report.broadcasts)
            };
            total_broadcasts += broadcasts;
            if delivered {
                outcome.delivered = true;
                outcome.latency = first_delivery.map(|t| penalty + t);
                if attempts > 1 {
                    outcome.recovered_by = Some(stage);
                }
                break;
            }
            scratch.tracer.record(TraceEvent::AttemptFailed {
                attempt: attempts,
                broadcasts,
            });
            if attempts >= policy.max_attempts {
                break;
            }
            penalty += params.horizon;
        }
        outcome.attempts = attempts;
        outcome.broadcasts = total_broadcasts;
        outcome.overhead = crate::sim::OverheadOutcome::measure(
            outcome.delivered,
            total_broadcasts,
            plan.ideal_hops,
        )
        .value();
        scratch.header = header;
        finish_flow_trace(scratch, &outcome);
        outcome
    }

    /// [`CityExperiment::simulate_flow_with`] over the secure message
    /// plane: the payload is sealed under the per-pair session key
    /// (ChaCha20-Poly1305, nonce from the message id) with an
    /// HMAC-authenticated header before the delivery simulation, and
    /// opened + verified by the receiver afterwards.
    ///
    /// **Delivery outcomes are unchanged.** Sealing draws no
    /// randomness — the payload is a pure function of the message id,
    /// the session key a pure function of the pair — so `delivered`,
    /// `broadcasts`, `latency`, and every other plaintext field is
    /// bit-identical to the plaintext path. Encryption adds *work*
    /// (one ECDH + HKDF per pair, amortized by the session cache, plus
    /// symmetric sealing per message) and the three secure outcome
    /// fields (`sealed` / `opened` / `auth_failed`).
    ///
    /// Steady state stays allocation-free: a cache hit is a shard read
    /// plus an `Arc` clone, sealing reuses the scratch's warmed
    /// buffers, and only the per-pair derivation (the amortized cost)
    /// allocates.
    ///
    /// # Panics
    /// Panics when [`CityExperiment::enable_encryption`] has not run —
    /// engines gate on their config's `encrypted` knob and validate
    /// before any worker spawns.
    pub fn simulate_flow_secure_with(
        &self,
        plan: &PlannedFlow,
        msg_id: u64,
        rng: &mut SimRng,
        scratch: &mut DeliveryScratch,
    ) -> PairOutcome {
        self.simulate_flow_secure_tampered(plan, msg_id, rng, scratch, None)
    }

    /// [`CityExperiment::simulate_flow_secure_with`] with adversarial
    /// fault injection: `tamper` corrupts the message between seal and
    /// receiver-side open, exactly where an on-path adversary could.
    /// A tampered flow that the simulation delivered must come back
    /// `auth_failed: true, delivered: false` — a forged message is
    /// never a delivery. `tamper: None` is the production path.
    pub fn simulate_flow_secure_tampered(
        &self,
        plan: &PlannedFlow,
        msg_id: u64,
        rng: &mut SimRng,
        scratch: &mut DeliveryScratch,
        tamper: Option<TamperMode>,
    ) -> PairOutcome {
        let secure = self
            .secure
            .as_ref()
            .expect("CityExperiment::simulate_flow_secure_with requires enable_encryption");
        // Sender side: session key from the sharded cache (the
        // derivation — ECDH + HKDF — runs once per pair), then seal
        // the deterministic payload and authenticate the header.
        let (key, derived) = secure.session(plan.src, plan.dst);
        if derived {
            scratch.keys_derived += 1;
        }
        fill_secure_payload(msg_id, &mut scratch.payload);
        let aad = secure_header(plan.src, plan.dst, msg_id, plan.route_bits);
        key.seal_into(msg_id, &aad, &scratch.payload, &mut scratch.sealed_buf);
        let header_tag = key.header_tag(&aad);

        // The delivery simulation is byte-identical to the plaintext
        // path: sealing added work, not randomness.
        let mut outcome = self.simulate_flow_with(plan, msg_id, rng, scratch);
        outcome.sealed = true;
        if !outcome.delivered {
            // Nothing arrived; there is nothing to open (or forge).
            return outcome;
        }

        // Receiver side: verify the header tag, then open. Tamper
        // injection corrupts what the receiver sees, never what the
        // sender computed.
        let mut rx_header = aad;
        match tamper {
            Some(TamperMode::Header) => rx_header[0] ^= 0x01,
            Some(TamperMode::Ciphertext) => {
                if let Some(byte) = scratch.sealed_buf.first_mut() {
                    *byte ^= 0x01;
                }
            }
            None => {}
        }
        let header_ok = key.verify_header(&rx_header, &header_tag);
        let opened = header_ok
            && key
                .open_into(
                    msg_id,
                    &rx_header,
                    &scratch.sealed_buf,
                    &mut scratch.opened_buf,
                )
                .is_ok();
        if opened {
            debug_assert_eq!(
                scratch.opened_buf, scratch.payload,
                "AEAD round trip must reproduce the payload"
            );
            outcome.opened = true;
        } else {
            // Authentication failed: the transport delivered bytes,
            // but they are not the sender's message. Explicitly not a
            // delivery.
            outcome.auth_failed = true;
            outcome.delivered = false;
            outcome.latency = None;
            outcome.overhead = None;
            outcome.recovered_by = None;
        }
        outcome
    }

    /// Plans, compresses, simulates, and scores one pair.
    pub fn run_pair(&self, src: u32, dst: u32, msg_id: u64, rng: &mut SimRng) -> PairOutcome {
        let plan = self.plan_flow(src, dst);
        self.simulate_flow(&plan, msg_id, rng)
    }

    /// The full §4 evaluation for this city.
    pub fn run(&self) -> CityResult {
        let cfg = &self.config;
        let mut pair_rng = SimRng::new(split_seed(cfg.seed, 0x9A195));
        let mut sim_rng = SimRng::new(split_seed(cfg.seed, 0xDE11FE7));

        // Reachability over many pairs (graph query only: cheap).
        let pairs = self.sample_pairs(cfg.reachability_pairs, &mut pair_rng);
        let reachable_pairs: Vec<(u32, u32)> = pairs
            .iter()
            .copied()
            .filter(|(s, d)| self.reachable(*s, *d))
            .collect();
        let reachability = if pairs.is_empty() {
            0.0
        } else {
            reachable_pairs.len() as f64 / pairs.len() as f64
        };

        // Deliverability over a subset of reachable pairs (event sim:
        // expensive), exactly as the paper does.
        let mut outcomes = Vec::new();
        for (i, (src, dst)) in reachable_pairs.iter().take(cfg.delivery_pairs).enumerate() {
            let msg_id = split_seed(cfg.seed, 0x5EED ^ i as u64);
            outcomes.push(self.run_pair(*src, *dst, msg_id, &mut sim_rng));
        }

        let delivered: Vec<&PairOutcome> = outcomes.iter().filter(|o| o.delivered).collect();
        let deliverability = if outcomes.is_empty() {
            0.0
        } else {
            delivered.len() as f64 / outcomes.len() as f64
        };

        let mut overheads: Vec<f64> = delivered.iter().filter_map(|o| o.overhead).collect();
        overheads.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
        let mut latencies: Vec<f64> = delivered
            .iter()
            .filter_map(|o| o.latency.map(|t| t.as_millis_f64()))
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mut bits: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.route_found)
            .map(|o| o.route_bits)
            .collect();
        bits.sort_unstable();

        CityResult {
            city: self.map.name().to_string(),
            buildings: self.map.len(),
            aps: self.aps.len(),
            mean_degree: self.apg.mean_degree(),
            components: self.apg.num_components(),
            reachability,
            deliverability,
            median_overhead: percentile_f(&overheads, 0.5),
            median_latency_ms: percentile_f(&latencies, 0.5),
            median_route_bits: percentile_u(&bits, 0.5),
            p90_route_bits: percentile_u(&bits, 0.9),
            outcomes,
        }
    }
}

/// Precomputes [`FaultState::postbox_ap_live`] for every building —
/// one O(buildings × APs) pass at preparation time replaces an O(APs)
/// scan per planned flow. Empty (no table) when no scenario is active.
fn live_postbox_table(map: &CityMap, aps: &[Ap], faults: Option<&FaultState>) -> Vec<Option<u32>> {
    match faults {
        Some(f) => (0..map.len())
            .map(|b| f.postbox_ap_live(aps, map, b as u32))
            .collect(),
        None => Vec::new(),
    }
}

/// Precomputes each building's nearest designated site by centroid
/// distance (lowest site id on exact ties — sites are iterated in
/// sorted order). A building that is itself a site maps to itself, so
/// a redirect through the table is a no-op for hardened buildings.
fn fallback_site_table(map: &CityMap, sites: &[u32]) -> Vec<Option<u32>> {
    (0..map.len())
        .map(|b| {
            let here = map.buildings()[b].centroid;
            let mut best: Option<(f64, u32)> = None;
            for &s in sites {
                let c = map.buildings()[s as usize].centroid;
                let d2 = (c.x - here.x).powi(2) + (c.y - here.y).powi(2);
                if best.map(|(bd, _)| d2 < bd).unwrap_or(true) {
                    best = Some((d2, s));
                }
            }
            best.map(|(_, s)| s)
        })
        .collect()
}

/// Bytes of deterministic payload every sealed flow carries.
const SECURE_PAYLOAD_LEN: usize = 64;

/// Fills `out` with the flow's deterministic payload: a SplitMix64
/// expansion of the message id. A pure function of `msg_id` — crucially
/// **not** a draw from the flow's simulation RNG stream, so enabling
/// encryption leaves every delivery outcome bit-identical, and a warm
/// (cached-session) run reproduces a cold run exactly.
fn fill_secure_payload(msg_id: u64, out: &mut Vec<u8>) {
    out.clear();
    let mut x = msg_id;
    for _ in 0..SECURE_PAYLOAD_LEN / 8 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
}

/// The authenticated header bytes: the flow's identity and routing
/// commitment `(src, dst, msg_id, route_bits)`, fixed-size so the hot
/// path builds it on the stack. Doubles as the AEAD's associated data,
/// binding ciphertext to header — swapping either between flows fails
/// authentication.
fn secure_header(src: u32, dst: u32, msg_id: u64, route_bits: usize) -> [u8; 24] {
    let mut header = [0u8; 24];
    header[..4].copy_from_slice(&src.to_le_bytes());
    header[4..8].copy_from_slice(&dst.to_le_bytes());
    header[8..16].copy_from_slice(&msg_id.to_le_bytes());
    header[16..].copy_from_slice(&(route_bits as u64).to_le_bytes());
    header
}

/// Closes the scratch's active flow trace with the outcome's summary
/// (a branch-only no-op when tracing is off or inactive).
fn finish_flow_trace(scratch: &mut DeliveryScratch, outcome: &PairOutcome) {
    scratch.tracer.finish_flow(FlowSummary {
        src: outcome.src,
        dst: outcome.dst,
        delivered: outcome.delivered,
        attempts: outcome.attempts,
        recovered_by: outcome.recovered_by.map(|s| s.rung()),
        broadcasts: outcome.broadcasts,
        latency_ns: outcome.latency.map(|t| t.as_nanos()),
    });
}

fn percentile_f(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx])
}

fn percentile_u(sorted: &[usize], q: f64) -> Option<usize> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_map::CityArchetype;

    fn small_config(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            reachability_pairs: 200,
            delivery_pairs: 10,
            seed,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn downtown_run_has_high_reachability_and_deliverability() {
        let map = CityArchetype::SurveyDowntown.generate(1);
        let exp = CityExperiment::prepare(map, small_config(1));
        let result = exp.run();
        assert!(
            result.reachability > 0.9,
            "downtown reachability {}",
            result.reachability
        );
        assert!(
            result.deliverability > 0.7,
            "downtown deliverability {}",
            result.deliverability
        );
        assert_eq!(result.outcomes.len(), 10);
        let overhead = result.median_overhead.expect("some deliveries succeeded");
        assert!(
            overhead > 1.0 && overhead < 60.0,
            "overhead {overhead} out of plausible range"
        );
        let bits = result.median_route_bits.unwrap();
        assert!(
            (40..600).contains(&bits),
            "median route bits {bits} out of plausible range"
        );
    }

    #[test]
    fn river_city_fractures() {
        let map = CityArchetype::SurveyRiver.generate(2);
        let exp = CityExperiment::prepare(map, small_config(2));
        let result = exp.run();
        assert!(result.components > 1, "the river must split the AP graph");
        assert!(
            result.reachability < 0.95,
            "cross-river pairs should be unreachable, got {}",
            result.reachability
        );
    }

    #[test]
    fn results_are_deterministic_in_seed() {
        let map = CityArchetype::SurveyResidential.generate(3);
        let a = CityExperiment::prepare(map.clone(), small_config(7)).run();
        let b = CityExperiment::prepare(map, small_config(7)).run();
        assert_eq!(a.reachability, b.reachability);
        assert_eq!(a.deliverability, b.deliverability);
        assert_eq!(a.aps, b.aps);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.broadcasts, y.broadcasts);
            assert_eq!(x.delivered, y.delivered);
        }
    }

    #[test]
    fn different_seed_changes_placement() {
        let map = CityArchetype::SurveyResidential.generate(3);
        let a = CityExperiment::prepare(map.clone(), small_config(7));
        let b = CityExperiment::prepare(map, small_config(8));
        assert_ne!(a.aps()[0].pos, b.aps()[0].pos);
    }

    #[test]
    fn sample_pairs_distinct_and_in_range() {
        let map = CityArchetype::SurveyDowntown.generate(4);
        let exp = CityExperiment::prepare(map, small_config(4));
        let mut rng = SimRng::new(1);
        let pairs = exp.sample_pairs(300, &mut rng);
        assert_eq!(pairs.len(), 300);
        let n = exp.map().len() as u32;
        let mut seen = std::collections::HashSet::new();
        for (s, d) in &pairs {
            assert!(*s < n && *d < n);
            assert_ne!(s, d);
            assert!(seen.insert((*s, *d)), "pairs must be unique");
        }
    }

    #[test]
    fn percentiles() {
        assert_eq!(percentile_f(&[], 0.5), None);
        assert_eq!(percentile_f(&[1.0], 0.5), Some(1.0));
        assert_eq!(percentile_f(&[1.0, 2.0, 3.0], 0.5), Some(2.0));
        assert_eq!(
            percentile_u(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100], 0.9),
            Some(90)
        );
    }

    #[test]
    fn tracing_is_invisible_and_captures_complete_traces() {
        use citymesh_telemetry::TraceConfig;
        let map = CityArchetype::SurveyDowntown.generate(5);
        let exp = CityExperiment::prepare(map, small_config(5));
        let mut pair_rng = SimRng::new(11);
        let pairs = exp.sample_pairs(6, &mut pair_rng);
        let mut plain = DeliveryScratch::new();
        let mut traced = DeliveryScratch::with_tracing(TraceConfig::sampled(1));
        for (i, (src, dst)) in pairs.iter().enumerate() {
            let plan = exp.plan_flow(*src, *dst);
            let msg_id = 1000 + i as u64;
            let mut rng_a = SimRng::new(40 + i as u64);
            let mut rng_b = SimRng::new(40 + i as u64);
            let a = exp.simulate_flow_with(&plan, msg_id, &mut rng_a, &mut plain);
            let b = exp.simulate_flow_with(&plan, msg_id, &mut rng_b, &mut traced);
            assert_eq!(a, b, "tracing must not change outcomes");
        }
        // sample_every=1 captures every flow; each trace opens with the
        // plan and its summary mirrors the outcome structure.
        let pms = traced.tracer_mut().take_postmortems();
        assert_eq!(pms.len(), pairs.len());
        for pm in &pms {
            assert!(
                matches!(pm.events.first(), Some(TraceEvent::Plan { .. })),
                "trace must open with the plan"
            );
            if pm.summary.delivered {
                assert!(pm
                    .events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Delivered { .. })));
            }
        }
    }

    #[test]
    fn no_deployment_plans_are_bit_identical() {
        // `set_deployment(None)` on a world that never had one must be
        // a perfect no-op: no epoch bump, no retargets, identical
        // plans — the guarantee that keeps every pre-placement golden
        // digest pinned in CI bit-identical.
        let map = CityArchetype::SurveyDowntown.generate(6);
        let cfg = ExperimentConfig {
            faults: Some(FaultScenario::district_blackouts(1, 150.0)),
            ..small_config(6)
        };
        let baseline = CityExperiment::prepare(map.clone(), cfg);
        let mut exp = CityExperiment::prepare(map, cfg);
        let t = exp.set_deployment(None);
        assert!(t.epoch.is_none());
        assert!(t.changed_aps.is_empty());
        assert!(t.retargeted_buildings.is_empty());
        let mut rng = SimRng::new(3);
        for (src, dst) in baseline.sample_pairs(40, &mut rng) {
            let a = baseline.plan_flow(src, dst);
            let b = exp.plan_flow(src, dst);
            assert_eq!(a.waypoints, b.waypoints);
            assert_eq!(a.src_ap, b.src_ap);
            assert_eq!(a.reachable, b.reachable);
            assert_eq!(b.redirect(), None);
        }
    }

    #[test]
    fn hardened_sites_survive_blackout_and_catch_redirected_mail() {
        let map = CityArchetype::SurveyDowntown.generate(6);
        let mut exp = CityExperiment::prepare(
            map,
            ExperimentConfig {
                faults: Some(FaultScenario::district_blackouts(2, 150.0)),
                ..small_config(6)
            },
        );
        // Two dark buildings that own APs: one becomes the hardened
        // site, the other's mail must redirect to it.
        let dark: Vec<u32> = (0..exp.map().len() as u32)
            .filter(|&b| {
                !exp.ap_graph().aps_of_building(b).is_empty()
                    && exp
                        .fault_state()
                        .unwrap()
                        .postbox_ap_live(exp.aps(), exp.map(), b)
                        .is_none()
            })
            .collect();
        assert!(dark.len() >= 2, "blackout should darken several buildings");
        let site = dark[0];
        let t = exp.set_deployment(Some(Deployment::new(vec![site], 1).unwrap()));
        let epoch = t.epoch.expect("hardening a dark building flips AP health");
        assert!(epoch.aps_changed > 0);
        assert!(epoch.touched_buildings.contains(&site));
        // The fault layer respects the site: every AP up, not blocked,
        // postbox live again.
        let st = exp.fault_state().unwrap();
        for &ap in exp.ap_graph().aps_of_building(site) {
            assert_eq!(st.health(ap), ApHealth::Up);
        }
        assert!(!st.building_blocked(site));
        assert!(st.postbox_ap_live(exp.aps(), exp.map(), site).is_some());
        // The planner respects it too: a still-dark destination's mail
        // is carried to the site (the only designated one).
        let other = dark[1];
        assert_eq!(exp.delivery_target(other), site);
        let src = (0..exp.map().len() as u32)
            .find(|&b| b != other && st.postbox_ap_live(exp.aps(), exp.map(), b).is_some())
            .expect("some building kept a live postbox");
        let plan = exp.plan_flow(src, other);
        assert_eq!(plan.redirect(), Some(site));
        assert_eq!(plan.delivery_dst(), site);
        assert_eq!(plan.dst, other, "cache key keeps the requested destination");
    }

    #[test]
    fn vacating_a_site_restores_scenario_health() {
        let map = CityArchetype::SurveyDowntown.generate(7);
        let cfg = ExperimentConfig {
            faults: Some(FaultScenario::district_blackouts(1, 140.0)),
            ..small_config(7)
        };
        let pristine = CityExperiment::prepare(map.clone(), cfg);
        let mut exp = CityExperiment::prepare(map, cfg);
        let dark: Vec<u32> = (0..exp.map().len() as u32)
            .filter(|&b| {
                !exp.ap_graph().aps_of_building(b).is_empty()
                    && exp.fault_state().unwrap().building_blocked(b)
            })
            .collect();
        assert!(dark.len() >= 2);
        exp.set_deployment(Some(Deployment::new(vec![dark[0]], 1).unwrap()));
        let t = exp.set_deployment(Some(Deployment::new(vec![dark[1]], 1).unwrap()));
        assert!(t.epoch.is_some(), "relocation flips health at both sites");
        // The vacated site is back to exactly what the scenario drew.
        let st = exp.fault_state().unwrap();
        let want = pristine.fault_state().unwrap();
        for &ap in exp.ap_graph().aps_of_building(dark[0]) {
            assert_eq!(st.health(ap), want.health(ap));
        }
        assert!(st.building_blocked(dark[0]));
        // And dropping the deployment restores the whole world.
        exp.set_deployment(None);
        let st = exp.fault_state().unwrap();
        for ap in 0..st.len() as u32 {
            assert_eq!(st.health(ap), want.health(ap));
        }
    }

    #[test]
    fn outcome_fields_are_coherent() {
        let map = CityArchetype::SurveyDowntown.generate(5);
        let exp = CityExperiment::prepare(map, small_config(5));
        let result = exp.run();
        for o in &result.outcomes {
            assert!(o.reachable, "only reachable pairs are simulated");
            if o.delivered {
                assert!(o.route_found);
                assert!(o.broadcasts > 0);
                assert!(o.waypoints >= 1 && o.waypoints <= o.route_len);
                assert!(o.route_bits > 0);
            }
            if let Some(ov) = o.overhead {
                assert!(ov >= 1.0, "cannot beat the ideal unicast: {ov}");
            }
        }
    }
}
