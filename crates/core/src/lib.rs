//! CityMesh: building routing for decentralized fallback networks.
//!
//! This crate is the paper's primary contribution (HotNets '24,
//! "The Case for Decentralized Fallback Networks"): a routing system
//! for city-scale Wi-Fi AP meshes that exchanges **no routing
//! metadata** between nodes. All shared state is a static geospatial
//! building map; a sender source-routes by picking a sequence of
//! buildings, compresses the route into *conduits*, and every AP
//! independently decides from the packet header plus its cached map
//! whether to rebroadcast.
//!
//! The pieces, in paper order (§3):
//!
//! 1. [`buildgraph`] — predict inter-building AP connectivity from
//!    footprints alone and weight edges by cubed distance.
//! 2. [`route`] — plan the building route (Dijkstra over the building
//!    graph); [`hier`] is its metro-scale counterpart, routing over a
//!    district overlay so planning stays sublinear in city size.
//! 3. [`conduit`] — compress the route into waypoint buildings whose
//!    connecting conduits (width `W`) cover every routed building
//!    (Figure 4), and reconstruct conduits at relay time.
//! 4. [`agent`] — the per-AP software agent: duplicate suppression,
//!    TTL, and the conduit-membership rebroadcast predicate.
//! 5. [`postbox`] — destination-side store-and-forward with sealed
//!    (encrypted) messages, retrieval, and push notifications.
//!
//! The evaluation machinery (§4) lives alongside:
//!
//! * [`placement`] — AP placement inside footprints at a configurable
//!   density (the paper uses 1 AP / 200 m²).
//! * [`apgraph`] — the ground-truth AP connectivity graph (unit disk,
//!   50 m) used for reachability and the ideal-unicast hop count.
//! * [`sim`] — the event-driven broadcast simulation measuring
//!   deliverability and transmission overhead.
//! * [`faults`] — deterministic fault injection (AP outages, district
//!   blackouts, degraded radios, stale maps) and the sender's
//!   graceful-degradation retry ladder.
//! * [`secure`] — the secure message plane: deterministic per-building
//!   keypairs (`NodeId = SHA-256(pubkey)`), the amortized per-pair
//!   session-key cache, and key rotation with churn-style session
//!   invalidation.
//! * [`pipeline`] — one-call experiment runs producing the numbers
//!   behind every figure (reachability, deliverability, overhead,
//!   header sizes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod apgraph;
pub mod bridge;
pub mod buildgraph;
pub mod conduit;
pub mod deploy;
pub mod faults;
pub mod hier;
pub mod pipeline;
pub mod placement;
pub mod postbox;
pub mod route;
pub mod secure;
pub mod sim;

pub use agent::{ApAgent, RebroadcastScope};
pub use apgraph::ApGraph;
pub use bridge::{apply_bridges, extend_placement, plan_bridges, Bridge, BridgePlan};
pub use buildgraph::{BuildingGraph, BuildingGraphParams};
pub use conduit::{
    compress_route, compress_route_into, reconstruct_conduits, reconstruct_conduits_into,
    within_conduits, CompressedRoute, ConduitError,
};
pub use deploy::{Deployment, DeploymentError};
pub use faults::{ApHealth, FaultScenario, FaultState, RecoveryStage, RetryPolicy};
pub use hier::{HierPlanScratch, HierPlanner};
// Hier tuning/stats types live in `citymesh-graph`; re-exported here so
// downstream crates (fleet, bench) can configure the hierarchical
// planner without a direct graph dependency.
pub use citymesh_graph::{HierParams, HierStats};
pub use pipeline::{
    CityExperiment, CityResult, ConfigError, DeploymentTransition, EpochTransition,
    ExperimentConfig, PairOutcome, PlanScratch, PlannedFlow,
};
pub use placement::{place_aps, postbox_ap, Ap};
pub use postbox::{Postbox, PostboxError, StoredMessage};
pub use route::{
    plan_route, plan_route_avoiding, plan_route_avoiding_into, plan_route_into, RouteError,
};
pub use secure::{SecureState, TamperMode, DOMAIN_KEYS};
pub use sim::{
    simulate_delivery, simulate_delivery_faulted, simulate_delivery_into, ApRole, DeliveryParams,
    DeliveryReport, DeliveryScratch, OverheadOutcome,
};

/// The paper's default Wi-Fi transmission range, meters (§4).
pub const DEFAULT_RANGE_M: f64 = 50.0;
/// The paper's default AP density: one AP per this many m² of building
/// footprint (§4).
pub const DEFAULT_M2_PER_AP: f64 = 200.0;
/// The paper's default conduit width `W`, meters (§3: "comparable to
/// the Wi-Fi transmission range, 50 m in our implementation").
pub const DEFAULT_CONDUIT_WIDTH_M: f64 = 50.0;
