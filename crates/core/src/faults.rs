//! Deterministic fault injection: the disaster the paper is about.
//!
//! The paper's premise (§1, the fractured-city case) is message
//! delivery *while infrastructure is failing* — yet a flat per-frame
//! `reception_loss` cannot express an AP that is simply gone, a
//! district knocked dark by a grid failure, or a sender planning on a
//! map that no longer matches reality. This module gives those
//! scenarios first-class, reproducible form:
//!
//! * **i.i.d. AP failure** — every AP fails independently with
//!   probability `p` (the disaster-recovery paper's
//!   delivery-rate-vs-failed-fraction axis);
//! * **district blackouts** — seeded disc outages over the city map,
//!   mimicking power-grid failure domains (failures are spatially
//!   *correlated*, which stresses conduits far harder than i.i.d.
//!   loss of the same magnitude);
//! * **degraded-AP mode** — APs that still run but drop an elevated
//!   fraction of frames (brown-outs, battery backup, damaged
//!   antennas);
//! * **map staleness** — the sender plans routes on the cached map
//!   while ground truth has failed APs (the paper's static-map
//!   assumption under stress). With a *fresh* map the planner routes
//!   around dead buildings up front.
//!
//! A [`FaultScenario`] is pure configuration. [`FaultState`] is its
//! materialization against one concrete AP placement, drawn from
//! dedicated [`SimRng`] sub-streams of the experiment seed — so a
//! scenario is bit-reproducible, independent of worker count, and
//! cheap to fingerprint for golden digests.
//!
//! Recovery lives in [`RetryPolicy`]: the sender's bounded escalation
//! ladder (re-send → widen the conduit → replan around known-dark
//! buildings) executed by
//! [`crate::CityExperiment::simulate_flow_with`].

use std::collections::HashSet;

use citymesh_geo::Point;
use citymesh_map::CityMap;
use citymesh_simcore::{substream_seed, SimRng};

use crate::pipeline::ConfigError;
use crate::placement::Ap;

/// Sub-stream domain for i.i.d. per-AP failure draws.
pub const DOMAIN_FAULT_IID: u64 = 0xFA11;
/// Sub-stream domain for blackout disc centers.
pub const DOMAIN_FAULT_BLACKOUT: u64 = 0xB1AC;
/// Sub-stream domain for degraded-AP draws.
pub const DOMAIN_FAULT_DEGRADE: u64 = 0xDE64;

/// The sender's bounded recovery ladder, attempted in order when a
/// simulated delivery times out:
///
/// 1. first send (always);
/// 2. **re-send** over the same conduit (a fresh jitter/loss draw —
///    recovers from unlucky frame loss);
/// 3. **widen** the conduit by [`RetryPolicy::widen_factor`], reusing
///    the cached waypoints (recruits off-spine APs around dead ones);
/// 4. **replan** over the surviving building graph, detouring around
///    buildings with zero live APs (recovers from a stale map).
///
/// `max_attempts` caps the total number of sends; rungs whose
/// geometry is unavailable (nothing to widen to, no surviving detour)
/// fall back to a re-send, so the ladder is always bounded and never
/// blocks on missing state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total delivery attempts, including the first send (≥ 1).
    pub max_attempts: u32,
    /// Conduit width multiplier for the widen rung (≥ 1; the result
    /// is clamped to the header-encodable maximum).
    pub widen_factor: f64,
}

impl RetryPolicy {
    /// No recovery: exactly one send. This is the implicit policy of
    /// every fault-free run, so enabling the fault subsystem with
    /// `RetryPolicy::none()` leaves RNG streams and fleet digests of
    /// healthy worlds untouched.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            widen_factor: 1.0,
        }
    }

    /// The full four-rung ladder: send, re-send, widen ×2, replan.
    pub fn ladder() -> Self {
        RetryPolicy {
            max_attempts: 4,
            widen_factor: 2.0,
        }
    }

    /// Validates the policy's invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts < 1 {
            return Err(ConfigError::OutOfRange {
                field: "retry.max_attempts",
                value: self.max_attempts as f64,
                min: 1.0,
                max: f64::INFINITY,
            });
        }
        if !self.widen_factor.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "retry.widen_factor",
                value: self.widen_factor,
            });
        }
        if self.widen_factor < 1.0 {
            return Err(ConfigError::OutOfRange {
                field: "retry.widen_factor",
                value: self.widen_factor,
                min: 1.0,
                max: f64::INFINITY,
            });
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::ladder()
    }
}

/// Which rung of the [`RetryPolicy`] ladder a delivery succeeded on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryStage {
    /// The first send (no recovery was needed).
    First,
    /// A plain re-send over the original conduit.
    Resend,
    /// The widened-conduit variant.
    Widen,
    /// The replanned detour around known-dark buildings.
    Replan,
}

impl RecoveryStage {
    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryStage::First => "first",
            RecoveryStage::Resend => "resend",
            RecoveryStage::Widen => "widen",
            RecoveryStage::Replan => "replan",
        }
    }

    /// The telemetry-layer rung this stage corresponds to (telemetry
    /// sits below this crate in the dependency graph, so it carries
    /// its own copy of the enum).
    pub fn rung(&self) -> citymesh_telemetry::Rung {
        match self {
            RecoveryStage::First => citymesh_telemetry::Rung::First,
            RecoveryStage::Resend => citymesh_telemetry::Rung::Resend,
            RecoveryStage::Widen => citymesh_telemetry::Rung::Widen,
            RecoveryStage::Replan => citymesh_telemetry::Rung::Replan,
        }
    }
}

/// A fault scenario: pure configuration, materialized per world by
/// [`FaultState::materialize`]. The default is the null scenario
/// (nothing fails, one send) — attaching it to an experiment changes
/// no observable behavior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultScenario {
    /// Independent per-AP failure probability.
    pub ap_failure_p: f64,
    /// Number of correlated blackout discs.
    pub blackouts: usize,
    /// Radius of each blackout disc, meters.
    pub blackout_radius_m: f64,
    /// Probability that a surviving AP runs degraded.
    pub degraded_p: f64,
    /// Extra per-frame reception loss at a degraded AP, combined with
    /// the medium's base loss as `1 − (1−base)(1−extra)`.
    pub degraded_loss: f64,
    /// When true (the paper's assumption under stress), the sender
    /// plans on the cached pre-disaster map and only the *replan*
    /// rung sees the surviving graph. When false the sender has a
    /// fresh map and routes around dark buildings from the start.
    pub stale_map: bool,
    /// The sender's recovery ladder.
    pub retry: RetryPolicy,
}

impl Default for FaultScenario {
    fn default() -> Self {
        FaultScenario {
            ap_failure_p: 0.0,
            blackouts: 0,
            blackout_radius_m: 0.0,
            degraded_p: 0.0,
            degraded_loss: 0.0,
            stale_map: true,
            retry: RetryPolicy::none(),
        }
    }
}

impl FaultScenario {
    /// i.i.d. AP failure at probability `p`, full recovery ladder.
    pub fn iid(p: f64) -> Self {
        FaultScenario {
            ap_failure_p: p,
            retry: RetryPolicy::ladder(),
            ..FaultScenario::default()
        }
    }

    /// `n` correlated blackout discs of radius `radius_m`, full
    /// recovery ladder.
    pub fn district_blackouts(n: usize, radius_m: f64) -> Self {
        FaultScenario {
            blackouts: n,
            blackout_radius_m: radius_m,
            retry: RetryPolicy::ladder(),
            ..FaultScenario::default()
        }
    }

    /// Validates probabilities, radii, and the retry policy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [
            ("faults.ap_failure_p", self.ap_failure_p),
            ("faults.degraded_p", self.degraded_p),
            ("faults.degraded_loss", self.degraded_loss),
        ] {
            if !value.is_finite() {
                return Err(ConfigError::NotFinite { field, value });
            }
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::OutOfRange {
                    field,
                    value,
                    min: 0.0,
                    max: 1.0,
                });
            }
        }
        if !self.blackout_radius_m.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "faults.blackout_radius_m",
                value: self.blackout_radius_m,
            });
        }
        if self.blackout_radius_m < 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "faults.blackout_radius_m",
                value: self.blackout_radius_m,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        self.retry.validate()
    }
}

/// Health of one AP under a materialized scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApHealth {
    /// Fully operational.
    Up,
    /// Running, but dropping extra frames.
    Degraded,
    /// Gone: never transmits, never receives.
    Failed,
}

/// A [`FaultScenario`] materialized against one AP placement: the
/// per-AP health vector, the set of buildings gone dark (zero live
/// APs), and the scenario's recovery knobs.
///
/// Materialization is serial and driven by dedicated sub-streams of
/// the experiment seed, so the state — and everything downstream of
/// it — is bit-identical regardless of how many fleet workers later
/// replay flows against it.
#[derive(Clone, Debug)]
pub struct FaultState {
    health: Vec<ApHealth>,
    blocked_buildings: HashSet<u32>,
    degraded_loss: f64,
    failed: usize,
    degraded: usize,
    retry: RetryPolicy,
    stale_map: bool,
    blackout_centers: Vec<Point>,
    /// Monotone world-mutation counter: 0 at materialization, bumped
    /// by [`FaultState::advance_epoch`] every time a churn event lands.
    /// Deliberately excluded from [`FaultState::fingerprint`] so the
    /// golden fingerprints of static (epoch-0) scenarios are unchanged;
    /// callers who want "fingerprint per epoch" simply call
    /// `fingerprint()` after each application.
    epoch: u64,
}

impl FaultState {
    /// Draws the scenario against `aps` over `map`, using sub-streams
    /// of `root_seed` (one per fault mechanism, so adding blackout
    /// discs never perturbs the i.i.d. draws and vice versa).
    pub fn materialize(
        scenario: &FaultScenario,
        aps: &[Ap],
        map: &CityMap,
        root_seed: u64,
    ) -> Self {
        let mut health = vec![ApHealth::Up; aps.len()];

        // Blackout discs: centers uniform over the map bounds.
        let bounds = map.bounds();
        let mut blackout_rng = SimRng::new(substream_seed(root_seed, DOMAIN_FAULT_BLACKOUT, 0));
        let mut centers = Vec::with_capacity(scenario.blackouts);
        for _ in 0..scenario.blackouts {
            let x = uniform_or_lo(&mut blackout_rng, bounds.min.x, bounds.max.x);
            let y = uniform_or_lo(&mut blackout_rng, bounds.min.y, bounds.max.y);
            centers.push(Point::new(x, y));
        }
        let r2 = scenario.blackout_radius_m * scenario.blackout_radius_m;

        let mut iid_rng = SimRng::new(substream_seed(root_seed, DOMAIN_FAULT_IID, 0));
        let mut degrade_rng = SimRng::new(substream_seed(root_seed, DOMAIN_FAULT_DEGRADE, 0));
        let mut failed = 0usize;
        let mut degraded = 0usize;
        for ap in aps {
            // Draw every stream for every AP so each mechanism's
            // stream position depends only on the AP index, never on
            // another mechanism's outcome.
            let iid_hit = iid_rng.chance(scenario.ap_failure_p);
            let degrade_hit = degrade_rng.chance(scenario.degraded_p);
            let dark = centers.iter().any(|c| ap.pos.dist2(*c) <= r2);
            let slot = &mut health[ap.id as usize];
            if iid_hit || dark {
                *slot = ApHealth::Failed;
                failed += 1;
            } else if degrade_hit && scenario.degraded_loss > 0.0 {
                *slot = ApHealth::Degraded;
                degraded += 1;
            }
        }

        // A building is dark when it has APs and none survived; such
        // buildings cannot host a postbox or relay, so the replan rung
        // detours around them.
        let mut has_ap = vec![false; map.len()];
        let mut has_live = vec![false; map.len()];
        for ap in aps {
            let b = ap.building as usize;
            has_ap[b] = true;
            if health[ap.id as usize] != ApHealth::Failed {
                has_live[b] = true;
            }
        }
        let blocked_buildings = (0..map.len() as u32)
            .filter(|&b| has_ap[b as usize] && !has_live[b as usize])
            .collect();

        FaultState {
            health,
            blocked_buildings,
            degraded_loss: scenario.degraded_loss,
            failed,
            degraded,
            retry: scenario.retry,
            stale_map: scenario.stale_map,
            blackout_centers: centers,
            epoch: 0,
        }
    }

    /// A state in which every AP is up (useful as a baseline).
    pub fn healthy(n_aps: usize) -> Self {
        FaultState {
            health: vec![ApHealth::Up; n_aps],
            blocked_buildings: HashSet::new(),
            degraded_loss: 0.0,
            failed: 0,
            degraded: 0,
            retry: RetryPolicy::none(),
            stale_map: true,
            blackout_centers: Vec::new(),
            epoch: 0,
        }
    }

    /// A state with an explicit casualty list — the targeted what-if
    /// counterpart of the stochastic [`materialize`]: kill exactly the
    /// APs in `failed_aps`, leave everything else up. Dark buildings
    /// are derived from the casualty list the same way materialization
    /// does; the sender plans on a stale map (it does not know who
    /// died).
    ///
    /// [`materialize`]: FaultState::materialize
    pub fn with_failed(aps: &[Ap], map: &CityMap, failed_aps: &[u32], retry: RetryPolicy) -> Self {
        let mut health = vec![ApHealth::Up; aps.len()];
        let mut failed = 0usize;
        for &id in failed_aps {
            let slot = &mut health[id as usize];
            if *slot != ApHealth::Failed {
                *slot = ApHealth::Failed;
                failed += 1;
            }
        }
        let mut has_ap = vec![false; map.len()];
        let mut has_live = vec![false; map.len()];
        for ap in aps {
            let b = ap.building as usize;
            has_ap[b] = true;
            if health[ap.id as usize] != ApHealth::Failed {
                has_live[b] = true;
            }
        }
        let blocked_buildings = (0..map.len() as u32)
            .filter(|&b| has_ap[b as usize] && !has_live[b as usize])
            .collect();
        FaultState {
            health,
            blocked_buildings,
            degraded_loss: 0.0,
            failed,
            degraded: 0,
            retry,
            stale_map: true,
            blackout_centers: Vec::new(),
            epoch: 0,
        }
    }

    /// Number of APs covered by this state.
    pub fn len(&self) -> usize {
        self.health.len()
    }

    /// Whether the state covers zero APs.
    pub fn is_empty(&self) -> bool {
        self.health.is_empty()
    }

    /// Health of AP `ap`.
    pub fn health(&self, ap: u32) -> ApHealth {
        self.health[ap as usize]
    }

    /// Whether AP `ap` is gone.
    #[inline]
    pub fn is_failed(&self, ap: u32) -> bool {
        self.health[ap as usize] == ApHealth::Failed
    }

    /// Extra per-frame reception loss at AP `ap` (0 unless degraded).
    #[inline]
    pub fn extra_loss(&self, ap: u32) -> f64 {
        if self.health[ap as usize] == ApHealth::Degraded {
            self.degraded_loss
        } else {
            0.0
        }
    }

    /// Count of failed APs.
    pub fn failed_count(&self) -> usize {
        self.failed
    }

    /// Count of degraded APs.
    pub fn degraded_count(&self) -> usize {
        self.degraded
    }

    /// Fraction of APs failed (0 when the placement is empty).
    pub fn failed_fraction(&self) -> f64 {
        if self.health.is_empty() {
            0.0
        } else {
            self.failed as f64 / self.health.len() as f64
        }
    }

    /// Buildings whose every AP failed.
    pub fn blocked_buildings(&self) -> &HashSet<u32> {
        &self.blocked_buildings
    }

    /// Whether `building` has APs but no live one.
    pub fn building_blocked(&self, building: u32) -> bool {
        self.blocked_buildings.contains(&building)
    }

    /// The scenario's recovery ladder.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Swaps the recovery ladder attached to this state. Churn
    /// experiments use this to run the *same* materialized world under
    /// different sender strategies without re-drawing any randomness.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The world-mutation epoch (0 until the first churn event).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bumps the epoch counter and returns the new value. Called once
    /// per applied world event, *after* the health changes land.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Applies a batch of per-AP health transitions (one churn event's
    /// materialized change list), updating the failed/degraded tallies
    /// and collecting the buildings whose AP population changed into
    /// `touched` (sorted, deduplicated). Returns how many APs actually
    /// changed state. No-op entries (an AP already in the target
    /// state) are skipped and do not touch their building.
    ///
    /// The caller is responsible for refreshing derived per-building
    /// state afterwards (blocked-set membership via
    /// [`FaultState::refresh_building`], live postbox tables) and for
    /// advancing the epoch — [`crate::CityExperiment::apply_world_event`]
    /// packages the full sequence.
    ///
    /// # Panics
    /// Panics when `aps.len()` differs from this state's AP count or a
    /// change names an AP outside it.
    pub fn apply_health(
        &mut self,
        changes: &[(u32, ApHealth)],
        aps: &[Ap],
        touched: &mut Vec<u32>,
    ) -> usize {
        assert_eq!(
            aps.len(),
            self.health.len(),
            "AP placement does not match this fault state"
        );
        touched.clear();
        let mut applied = 0usize;
        for &(ap, next) in changes {
            let slot = &mut self.health[ap as usize];
            let prev = *slot;
            if prev == next {
                continue;
            }
            match prev {
                ApHealth::Failed => self.failed -= 1,
                ApHealth::Degraded => self.degraded -= 1,
                ApHealth::Up => {}
            }
            match next {
                ApHealth::Failed => self.failed += 1,
                ApHealth::Degraded => self.degraded += 1,
                ApHealth::Up => {}
            }
            *slot = next;
            applied += 1;
            touched.push(aps[ap as usize].building);
        }
        touched.sort_unstable();
        touched.dedup();
        applied
    }

    /// Recomputes `building`'s membership in the blocked set from the
    /// current health of `building_aps` (its AP bucket, e.g. from
    /// [`crate::ApGraph::aps_of_building`]). Incremental counterpart
    /// of the full scan done at materialization: after a churn event,
    /// only the touched buildings need this.
    pub fn refresh_building(&mut self, building: u32, building_aps: &[u32]) {
        let has_ap = !building_aps.is_empty();
        let has_live = building_aps.iter().any(|&ap| !self.is_failed(ap));
        if has_ap && !has_live {
            self.blocked_buildings.insert(building);
        } else {
            self.blocked_buildings.remove(&building);
        }
    }

    /// Whether senders plan on the stale (pre-disaster) map.
    pub fn stale_map(&self) -> bool {
        self.stale_map
    }

    /// Materialized blackout disc centers (for rendering).
    pub fn blackout_centers(&self) -> &[Point] {
        &self.blackout_centers
    }

    /// The postbox AP of `building` among *live* APs: closest
    /// surviving AP to the footprint centroid, mirroring
    /// [`crate::placement::postbox_ap`] under faults. `None` when the
    /// building is dark.
    pub fn postbox_ap_live(&self, aps: &[Ap], map: &CityMap, building: u32) -> Option<u32> {
        let b = map.building(building)?;
        aps.iter()
            .filter(|ap| ap.building == building && !self.is_failed(ap.id))
            .min_by(|x, y| {
                let dx = x.pos.dist2(b.centroid);
                let dy = y.pos.dist2(b.centroid);
                dx.partial_cmp(&dy).expect("finite distances")
            })
            .map(|ap| ap.id)
    }

    /// FNV-1a fingerprint of the materialized health vector — the
    /// golden value CI pins to detect any drift in fault
    /// materialization (RNG, ordering, or geometry changes).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u64| {
            h ^= byte;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for (i, st) in self.health.iter().enumerate() {
            let code = match st {
                ApHealth::Up => 0u64,
                ApHealth::Degraded => 1,
                ApHealth::Failed => 2,
            };
            mix(i as u64 ^ (code << 32));
        }
        mix(self.blocked_buildings.len() as u64);
        h
    }
}

/// Combines two independent per-frame loss probabilities.
#[inline]
pub fn combined_loss(base: f64, extra: f64) -> f64 {
    if extra <= 0.0 {
        base
    } else {
        1.0 - (1.0 - base) * (1.0 - extra)
    }
}

/// `uniform_range` that tolerates a degenerate interval (single-point
/// map bounds) by returning `lo`.
fn uniform_or_lo(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        rng.uniform_range(lo, hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::place_aps;
    use citymesh_map::CityArchetype;

    fn world(seed: u64) -> (CityMap, Vec<Ap>) {
        let map = CityArchetype::SurveyDowntown.generate(seed);
        let mut rng = SimRng::new(seed);
        let aps = place_aps(&map, 200.0, &mut rng);
        (map, aps)
    }

    #[test]
    fn null_scenario_fails_nothing() {
        let (map, aps) = world(1);
        let st = FaultState::materialize(&FaultScenario::default(), &aps, &map, 1);
        assert_eq!(st.failed_count(), 0);
        assert_eq!(st.degraded_count(), 0);
        assert!(st.blocked_buildings().is_empty());
        assert_eq!(st.failed_fraction(), 0.0);
        assert!((0..aps.len() as u32).all(|a| st.health(a) == ApHealth::Up));
    }

    #[test]
    fn iid_failure_rate_tracks_p() {
        let (map, aps) = world(2);
        let st = FaultState::materialize(&FaultScenario::iid(0.3), &aps, &map, 2);
        let f = st.failed_fraction();
        assert!((0.2..0.4).contains(&f), "30% i.i.d. gave {f}");
        // Everything failed ⇒ every building with APs is blocked.
        let all = FaultState::materialize(&FaultScenario::iid(1.0), &aps, &map, 2);
        assert_eq!(all.failed_count(), aps.len());
        assert!(!all.blocked_buildings().is_empty());
    }

    #[test]
    fn materialization_is_deterministic_in_seed() {
        let (map, aps) = world(3);
        let sc = FaultScenario {
            ap_failure_p: 0.15,
            blackouts: 2,
            blackout_radius_m: 120.0,
            degraded_p: 0.2,
            degraded_loss: 0.3,
            ..FaultScenario::default()
        };
        let a = FaultState::materialize(&sc, &aps, &map, 7);
        let b = FaultState::materialize(&sc, &aps, &map, 7);
        assert_eq!(a.health, b.health);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultState::materialize(&sc, &aps, &map, 8);
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed must matter");
    }

    #[test]
    fn mechanisms_use_independent_substreams() {
        // Adding blackouts must not change which APs the i.i.d. draw
        // fails (they read different sub-streams).
        let (map, aps) = world(4);
        let iid_only = FaultState::materialize(&FaultScenario::iid(0.2), &aps, &map, 5);
        let with_blackout = FaultState::materialize(
            &FaultScenario {
                blackouts: 1,
                blackout_radius_m: 100.0,
                ..FaultScenario::iid(0.2)
            },
            &aps,
            &map,
            5,
        );
        for ap in &aps {
            if iid_only.is_failed(ap.id) {
                assert!(
                    with_blackout.is_failed(ap.id),
                    "i.i.d. casualty {} must persist when blackouts are added",
                    ap.id
                );
            }
        }
        assert!(with_blackout.failed_count() >= iid_only.failed_count());
    }

    #[test]
    fn blackout_is_spatially_correlated() {
        let (map, aps) = world(6);
        let st =
            FaultState::materialize(&FaultScenario::district_blackouts(1, 150.0), &aps, &map, 9);
        assert_eq!(st.blackout_centers().len(), 1);
        let c = st.blackout_centers()[0];
        for ap in &aps {
            let inside = ap.pos.dist2(c) <= 150.0 * 150.0;
            assert_eq!(
                st.is_failed(ap.id),
                inside,
                "blackout failure must be exactly the disc"
            );
        }
    }

    #[test]
    fn degraded_aps_survive_with_extra_loss() {
        let (map, aps) = world(7);
        let st = FaultState::materialize(
            &FaultScenario {
                degraded_p: 0.5,
                degraded_loss: 0.4,
                ..FaultScenario::default()
            },
            &aps,
            &map,
            11,
        );
        assert_eq!(st.failed_count(), 0);
        assert!(st.degraded_count() > 0);
        let d = (0..aps.len() as u32)
            .find(|&a| st.health(a) == ApHealth::Degraded)
            .unwrap();
        assert_eq!(st.extra_loss(d), 0.4);
        let up = (0..aps.len() as u32)
            .find(|&a| st.health(a) == ApHealth::Up)
            .unwrap();
        assert_eq!(st.extra_loss(up), 0.0);
    }

    #[test]
    fn postbox_ap_live_skips_casualties() {
        let (map, aps) = world(8);
        let healthy = FaultState::healthy(aps.len());
        let b = aps[0].building;
        let pb = crate::placement::postbox_ap(&aps, &map, b).unwrap();
        assert_eq!(healthy.postbox_ap_live(&aps, &map, b), Some(pb));

        // Fail exactly the postbox AP: the live postbox must move to
        // another AP of the same building, or None if it was alone.
        let mut st = healthy.clone();
        st.health[pb as usize] = ApHealth::Failed;
        match st.postbox_ap_live(&aps, &map, b) {
            Some(alt) => {
                assert_ne!(alt, pb);
                assert_eq!(aps[alt as usize].building, b);
            }
            None => {
                assert_eq!(
                    aps.iter().filter(|a| a.building == b).count(),
                    1,
                    "None is only valid when the postbox was the sole AP"
                );
            }
        }
    }

    #[test]
    fn combined_loss_math() {
        assert_eq!(combined_loss(0.2, 0.0), 0.2);
        assert!((combined_loss(0.0, 0.3) - 0.3).abs() < 1e-12);
        let c = combined_loss(0.5, 0.5);
        assert!((c - 0.75).abs() < 1e-12);
        assert_eq!(combined_loss(1.0, 0.5), 1.0);
    }

    #[test]
    fn scenario_validation_rejects_garbage() {
        assert!(FaultScenario::default().validate().is_ok());
        assert!(FaultScenario::iid(0.5).validate().is_ok());
        let bad_p = FaultScenario {
            ap_failure_p: f64::NAN,
            ..FaultScenario::default()
        };
        assert!(bad_p.validate().is_err());
        let neg = FaultScenario {
            degraded_loss: -0.1,
            ..FaultScenario::default()
        };
        assert!(neg.validate().is_err());
        let bad_r = FaultScenario {
            blackout_radius_m: f64::INFINITY,
            ..FaultScenario::default()
        };
        assert!(bad_r.validate().is_err());
        let zero_attempts = FaultScenario {
            retry: RetryPolicy {
                max_attempts: 0,
                widen_factor: 2.0,
            },
            ..FaultScenario::default()
        };
        assert!(zero_attempts.validate().is_err());
        let shrink = FaultScenario {
            retry: RetryPolicy {
                max_attempts: 2,
                widen_factor: 0.5,
            },
            ..FaultScenario::default()
        };
        assert!(shrink.validate().is_err());
    }

    #[test]
    fn apply_health_keeps_tallies_and_blocked_set_consistent() {
        let (map, aps) = world(12);
        let mut st = FaultState::healthy(aps.len());
        assert_eq!(st.epoch(), 0);

        // Kill every AP of one building: the tallies must move, the
        // building must join the blocked set, and reviving one AP must
        // clear it again.
        let b = aps[0].building;
        let bucket: Vec<u32> = aps
            .iter()
            .filter(|a| a.building == b)
            .map(|a| a.id)
            .collect();
        let kill: Vec<(u32, ApHealth)> = bucket.iter().map(|&ap| (ap, ApHealth::Failed)).collect();
        let mut touched = Vec::new();
        let applied = st.apply_health(&kill, &aps, &mut touched);
        assert_eq!(applied, bucket.len());
        assert_eq!(touched, vec![b]);
        assert_eq!(st.failed_count(), bucket.len());
        st.refresh_building(b, &bucket);
        assert!(st.building_blocked(b));
        assert_eq!(st.advance_epoch(), 1);

        // Re-applying the same changes is a no-op: nothing flips twice.
        assert_eq!(st.apply_health(&kill, &aps, &mut touched), 0);
        assert!(touched.is_empty());

        let revive = [(bucket[0], ApHealth::Up)];
        assert_eq!(st.apply_health(&revive, &aps, &mut touched), 1);
        assert_eq!(touched, vec![b]);
        st.refresh_building(b, &bucket);
        assert!(!st.building_blocked(b));
        assert_eq!(st.failed_count(), bucket.len() - 1);

        // A full-scan rebuild agrees with the incremental bookkeeping.
        let failed: Vec<u32> = (0..aps.len() as u32).filter(|&a| st.is_failed(a)).collect();
        let rebuilt = FaultState::with_failed(&aps, &map, &failed, RetryPolicy::none());
        assert_eq!(rebuilt.failed_count(), st.failed_count());
        assert_eq!(rebuilt.fingerprint(), st.fingerprint());
    }

    #[test]
    fn epoch_does_not_perturb_fingerprint() {
        let (_map, aps) = world(14);
        let mut st = FaultState::healthy(aps.len());
        let before = st.fingerprint();
        st.advance_epoch();
        assert_eq!(
            st.fingerprint(),
            before,
            "epoch is bookkeeping, not world state: golden fingerprints \
             of static scenarios must not move"
        );
    }

    #[test]
    fn fingerprint_distinguishes_scenarios() {
        let (map, aps) = world(10);
        let a = FaultState::materialize(&FaultScenario::iid(0.1), &aps, &map, 3);
        let b = FaultState::materialize(&FaultScenario::iid(0.2), &aps, &map, 3);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultState::healthy(aps.len()).fingerprint()
        );
    }
}
