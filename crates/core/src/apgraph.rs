//! The ground-truth AP connectivity graph (paper §4).
//!
//! "Connects these APs into a graph where the inter-AP distance is
//! below a configurable transmission range." This graph is the
//! *simulation's truth*: reachability is membership in the same
//! connected component, and the BFS hop count between endpoints is the
//! paper's ideal-unicast lower bound for transmission overhead.
//!
//! CityMesh itself never sees this graph — routing uses only the
//! building map. Keeping the two rigidly separated is what makes the
//! evaluation honest.

use citymesh_geo::{GridIndex, Point};
use citymesh_graph::{bfs, connected_components, Graph};

use crate::placement::Ap;

/// AP graph plus the indexes the simulator needs.
#[derive(Clone, Debug)]
pub struct ApGraph {
    graph: Graph,
    index: GridIndex,
    range_m: f64,
    building_of: Vec<u32>,
    components: Vec<u32>,
    num_components: usize,
}

impl ApGraph {
    /// Builds the unit-disk graph over `aps` with cutoff `range_m`.
    ///
    /// # Panics
    /// Panics on a non-positive range.
    pub fn build(aps: &[Ap], range_m: f64) -> Self {
        assert!(range_m > 0.0, "range must be positive");
        let positions: Vec<Point> = aps.iter().map(|a| a.pos).collect();
        let index = GridIndex::build(&positions, range_m.max(1.0));
        let mut graph = Graph::new(aps.len());
        for ap in aps {
            index.for_each_in_circle(ap.pos, range_m, |other, _| {
                if other > ap.id {
                    graph.add_edge(ap.id, other, 1.0);
                }
            });
        }
        let (components, num_components) = connected_components(&graph);
        ApGraph {
            graph,
            index,
            range_m,
            building_of: aps.iter().map(|a| a.building).collect(),
            components,
            num_components,
        }
    }

    /// Number of APs.
    pub fn len(&self) -> usize {
        self.building_of.len()
    }

    /// Whether there are no APs.
    pub fn is_empty(&self) -> bool {
        self.building_of.is_empty()
    }

    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The transmission range used to build the graph.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Position of AP `id`.
    pub fn position(&self, id: u32) -> Point {
        self.index.position(id)
    }

    /// Building containing AP `id`.
    pub fn building_of(&self, id: u32) -> u32 {
        self.building_of[id as usize]
    }

    /// All AP ids within `radius` of `p` (the broadcast audience).
    pub fn for_each_in_range(&self, p: Point, f: impl FnMut(u32, Point)) {
        self.index.for_each_in_circle(p, self.range_m, f);
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Whether APs `a` and `b` are in the same component — the paper's
    /// *reachability* predicate.
    pub fn reachable(&self, a: u32, b: u32) -> bool {
        self.components[a as usize] == self.components[b as usize]
    }

    /// Whether any AP of `building_a` can reach any AP of
    /// `building_b`. Buildings host ≥ 1 AP each by placement
    /// construction, and all APs of one building share a component in
    /// practice; this checks all pairs for robustness.
    pub fn buildings_reachable(&self, building_a: u32, building_b: u32) -> bool {
        let comps_a: Vec<u32> = self
            .components
            .iter()
            .zip(&self.building_of)
            .filter(|(_, b)| **b == building_a)
            .map(|(c, _)| *c)
            .collect();
        self.components
            .iter()
            .zip(&self.building_of)
            .any(|(c, b)| *b == building_b && comps_a.contains(c))
    }

    /// Minimum hop count from AP `src` to **any** AP inside
    /// `dst_building` — the ideal-unicast transmission count (§4's
    /// overhead denominator). `None` when unreachable.
    pub fn ideal_hops_to_building(&self, src: u32, dst_building: u32) -> Option<u64> {
        let result = bfs(&self.graph, src);
        let mut best = f64::INFINITY;
        for (id, b) in self.building_of.iter().enumerate() {
            if *b == dst_building {
                best = best.min(result.dist[id]);
            }
        }
        best.is_finite().then_some(best as u64)
    }

    /// All AP ids belonging to `building`.
    pub fn aps_in_building(&self, building: u32) -> Vec<u32> {
        self.building_of
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == building)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Mean node degree (a connectivity health indicator reported in
    /// experiment summaries).
    pub fn mean_degree(&self) -> f64 {
        self.graph.mean_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Ap;

    fn ap(id: u32, x: f64, y: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, y),
            building,
        }
    }

    /// Two clusters 40 m apart internally, 500 m between clusters.
    fn two_cluster_aps() -> Vec<Ap> {
        vec![
            ap(0, 0.0, 0.0, 0),
            ap(1, 40.0, 0.0, 0),
            ap(2, 80.0, 0.0, 1),
            ap(3, 500.0, 0.0, 2),
            ap(4, 540.0, 0.0, 2),
        ]
    }

    #[test]
    fn edges_respect_range_cutoff() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        assert!(g.graph().has_edge(0, 1));
        assert!(g.graph().has_edge(1, 2));
        assert!(!g.graph().has_edge(0, 2)); // 80 m
        assert!(g.graph().has_edge(3, 4));
        assert!(!g.graph().has_edge(2, 3)); // 420 m
    }

    #[test]
    fn components_and_reachability() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        assert_eq!(g.num_components(), 2);
        assert!(g.reachable(0, 2));
        assert!(!g.reachable(0, 3));
        assert!(g.buildings_reachable(0, 1));
        assert!(!g.buildings_reachable(0, 2));
        assert!(g.buildings_reachable(2, 2));
    }

    #[test]
    fn ideal_hops() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        // AP0 → building 1 (AP2): 0→1→2 = 2 hops.
        assert_eq!(g.ideal_hops_to_building(0, 1), Some(2));
        // AP0 → its own building: AP0 is already there, 0 hops.
        assert_eq!(g.ideal_hops_to_building(0, 0), Some(0));
        // Unreachable cluster.
        assert_eq!(g.ideal_hops_to_building(0, 2), None);
    }

    #[test]
    fn building_ap_lookup() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        assert_eq!(g.aps_in_building(0), vec![0, 1]);
        assert_eq!(g.aps_in_building(2), vec![3, 4]);
        assert!(g.aps_in_building(9).is_empty());
        assert_eq!(g.building_of(2), 1);
    }

    #[test]
    fn broadcast_audience_query() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        let mut heard = Vec::new();
        g.for_each_in_range(Point::new(40.0, 0.0), |id, _| heard.push(id));
        heard.sort_unstable();
        // Within 50 m of (40,0): APs 0, 1, 2. (Note: includes self.)
        assert_eq!(heard, vec![0, 1, 2]);
    }

    #[test]
    fn exact_range_boundary_is_connected() {
        let aps = vec![ap(0, 0.0, 0.0, 0), ap(1, 50.0, 0.0, 1)];
        let g = ApGraph::build(&aps, 50.0);
        assert!(g.graph().has_edge(0, 1), "d == range must connect");
    }

    #[test]
    fn empty_input() {
        let g = ApGraph::build(&[], 50.0);
        assert!(g.is_empty());
        assert_eq!(g.num_components(), 0);
    }
}
