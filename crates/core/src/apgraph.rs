//! The ground-truth AP connectivity graph (paper §4).
//!
//! "Connects these APs into a graph where the inter-AP distance is
//! below a configurable transmission range." This graph is the
//! *simulation's truth*: reachability is membership in the same
//! connected component, and the BFS hop count between endpoints is the
//! paper's ideal-unicast lower bound for transmission overhead.
//!
//! CityMesh itself never sees this graph — routing uses only the
//! building map. Keeping the two rigidly separated is what makes the
//! evaluation honest.

use citymesh_geo::{GridIndex, OrientedRect, Point};
use citymesh_graph::{bfs_distance_to, connected_components, CsrGraph, Graph, PlannerScratch};

use crate::placement::Ap;

/// AP graph plus the indexes the simulator needs.
///
/// Like [`crate::BuildingGraph`], the adjacency structure is frozen
/// into CSR form at build time: at metro scale (~1M APs) a per-vertex
/// `Vec` would cost one allocation and a 24-byte header per AP.
#[derive(Clone, Debug)]
pub struct ApGraph {
    graph: CsrGraph,
    index: GridIndex,
    range_m: f64,
    building_of: Vec<u32>,
    components: Vec<u32>,
    num_components: usize,
    /// CSR building→AP buckets: `bucket_starts[b]..bucket_starts[b+1]`
    /// indexes into `bucket_items`, which holds AP ids in ascending
    /// order within each building. Sized by the largest building id
    /// referenced by any AP; queries beyond that yield empty slices.
    bucket_starts: Vec<u32>,
    bucket_items: Vec<u32>,
}

impl ApGraph {
    /// Builds the unit-disk graph over `aps` with cutoff `range_m`.
    ///
    /// # Panics
    /// Panics on a non-positive range.
    pub fn build(aps: &[Ap], range_m: f64) -> Self {
        assert!(range_m > 0.0, "range must be positive");
        let positions: Vec<Point> = aps.iter().map(|a| a.pos).collect();
        let index = GridIndex::build(&positions, range_m.max(1.0));
        let mut graph = Graph::new(aps.len());
        for ap in aps {
            index.for_each_in_circle(ap.pos, range_m, |other, _| {
                if other > ap.id {
                    graph.add_edge(ap.id, other, 1.0);
                }
            });
        }
        let graph = CsrGraph::from_graph(&graph);
        let (components, num_components) = connected_components(&graph);
        let building_of: Vec<u32> = aps.iter().map(|a| a.building).collect();
        // Counting sort into CSR buckets. Iterating APs in id order
        // keeps each bucket's AP ids ascending.
        let n_buildings = building_of
            .iter()
            .map(|b| *b as usize + 1)
            .max()
            .unwrap_or(0);
        let mut bucket_starts = vec![0u32; n_buildings + 1];
        for &b in &building_of {
            bucket_starts[b as usize + 1] += 1;
        }
        for i in 1..=n_buildings {
            bucket_starts[i] += bucket_starts[i - 1];
        }
        let mut cursor = bucket_starts.clone();
        let mut bucket_items = vec![0u32; building_of.len()];
        for (id, &b) in building_of.iter().enumerate() {
            bucket_items[cursor[b as usize] as usize] = id as u32;
            cursor[b as usize] += 1;
        }
        ApGraph {
            graph,
            index,
            range_m,
            building_of,
            components,
            num_components,
            bucket_starts,
            bucket_items,
        }
    }

    /// Number of APs.
    pub fn len(&self) -> usize {
        self.building_of.len()
    }

    /// Whether there are no APs.
    pub fn is_empty(&self) -> bool {
        self.building_of.is_empty()
    }

    /// The underlying unweighted graph, in frozen CSR form.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Heap bytes held by the graph and its simulator-facing indexes —
    /// the metro sweep's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.graph.memory_bytes()
            + self.index.memory_bytes()
            + self.building_of.capacity() * size_of::<u32>()
            + self.components.capacity() * size_of::<u32>()
            + self.bucket_starts.capacity() * size_of::<u32>()
            + self.bucket_items.capacity() * size_of::<u32>()
    }

    /// The transmission range used to build the graph.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Position of AP `id`.
    pub fn position(&self, id: u32) -> Point {
        self.index.position(id)
    }

    /// Building containing AP `id`.
    pub fn building_of(&self, id: u32) -> u32 {
        self.building_of[id as usize]
    }

    /// All AP ids within `radius` of `p` (the broadcast audience).
    pub fn for_each_in_range(&self, p: Point, f: impl FnMut(u32, Point)) {
        self.index.for_each_in_circle(p, self.range_m, f);
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Whether APs `a` and `b` are in the same component — the paper's
    /// *reachability* predicate.
    pub fn reachable(&self, a: u32, b: u32) -> bool {
        self.components[a as usize] == self.components[b as usize]
    }

    /// Whether any AP of `building_a` can reach any AP of
    /// `building_b`. Buildings host ≥ 1 AP each by placement
    /// construction, and all APs of one building share a component in
    /// practice; this checks all pairs for robustness.
    pub fn buildings_reachable(&self, building_a: u32, building_b: u32) -> bool {
        // O(|APs of a| × |APs of b|) over the CSR buckets — a handful
        // of comparisons in practice (placement puts 1–3 APs per
        // building), with no allocation and no whole-city scan.
        self.aps_of_building(building_a).iter().any(|&a| {
            self.aps_of_building(building_b)
                .iter()
                .any(|&b| self.components[a as usize] == self.components[b as usize])
        })
    }

    /// Minimum hop count from AP `src` to **any** AP inside
    /// `dst_building` — the ideal-unicast transmission count (§4's
    /// overhead denominator). `None` when unreachable.
    ///
    /// Convenience wrapper over
    /// [`ideal_hops_to_building_with`](Self::ideal_hops_to_building_with)
    /// that allocates a one-shot scratch; planner loops hold one and
    /// call the `_with` form directly.
    pub fn ideal_hops_to_building(&self, src: u32, dst_building: u32) -> Option<u64> {
        let mut scratch = PlannerScratch::new();
        self.ideal_hops_to_building_with(src, dst_building, &mut scratch)
    }

    /// [`ideal_hops_to_building`](Self::ideal_hops_to_building) against
    /// caller-owned scratch buffers: an early-exit BFS that stops at
    /// the first AP of `dst_building` it discovers (BFS discovers in
    /// nondecreasing hop order, so that first hit is the minimum, equal
    /// to the full-scan answer) and allocates nothing once warm.
    pub fn ideal_hops_to_building_with(
        &self,
        src: u32,
        dst_building: u32,
        scratch: &mut PlannerScratch,
    ) -> Option<u64> {
        bfs_distance_to(
            &self.graph,
            src,
            |ap| self.building_of[ap as usize] == dst_building,
            scratch,
        )
    }

    /// All AP ids belonging to `building`, ascending.
    ///
    /// Allocating wrapper over
    /// [`aps_of_building`](Self::aps_of_building), kept for callers
    /// that want an owned list.
    pub fn aps_in_building(&self, building: u32) -> Vec<u32> {
        self.aps_of_building(building).to_vec()
    }

    /// All AP ids belonging to `building` as a borrowed slice
    /// (ascending, possibly empty) — an O(1) lookup into the static
    /// CSR building→AP bucket index.
    pub fn aps_of_building(&self, building: u32) -> &[u32] {
        let b = building as usize;
        if b + 1 >= self.bucket_starts.len() {
            return &[];
        }
        let lo = self.bucket_starts[b] as usize;
        let hi = self.bucket_starts[b + 1] as usize;
        &self.bucket_items[lo..hi]
    }

    /// Calls `f(ap, pos)` for every AP inside any of `conduits`, in
    /// ascending AP id order, each AP at most once. Cost is
    /// O(items in grid cells touched by the conduit bounding boxes),
    /// not O(city): each conduit queries the spatial bucket index by
    /// its axis-aligned bounding box and filters by exact
    /// oriented-rectangle containment. The conduit membership audit a
    /// relay region analysis needs, without a full-placement scan.
    pub fn for_each_ap_in_conduits(
        &self,
        conduits: &[OrientedRect],
        candidates: &mut Vec<u32>,
        mut f: impl FnMut(u32, Point),
    ) {
        candidates.clear();
        for c in conduits {
            self.index.for_each_in_rect(c.bbox(), |id, pos| {
                if c.contains(pos) {
                    candidates.push(id);
                }
            });
        }
        // Overlapping conduits surface an AP once per containing
        // rectangle; sort + dedup restores the canonical order.
        candidates.sort_unstable();
        candidates.dedup();
        for &id in candidates.iter() {
            f(id, self.index.position(id));
        }
    }

    /// Mean node degree (a connectivity health indicator reported in
    /// experiment summaries).
    pub fn mean_degree(&self) -> f64 {
        self.graph.mean_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Ap;

    fn ap(id: u32, x: f64, y: f64, building: u32) -> Ap {
        Ap {
            id,
            pos: Point::new(x, y),
            building,
        }
    }

    /// Two clusters 40 m apart internally, 500 m between clusters.
    fn two_cluster_aps() -> Vec<Ap> {
        vec![
            ap(0, 0.0, 0.0, 0),
            ap(1, 40.0, 0.0, 0),
            ap(2, 80.0, 0.0, 1),
            ap(3, 500.0, 0.0, 2),
            ap(4, 540.0, 0.0, 2),
        ]
    }

    #[test]
    fn edges_respect_range_cutoff() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        assert!(g.graph().has_edge(0, 1));
        assert!(g.graph().has_edge(1, 2));
        assert!(!g.graph().has_edge(0, 2)); // 80 m
        assert!(g.graph().has_edge(3, 4));
        assert!(!g.graph().has_edge(2, 3)); // 420 m
    }

    #[test]
    fn components_and_reachability() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        assert_eq!(g.num_components(), 2);
        assert!(g.reachable(0, 2));
        assert!(!g.reachable(0, 3));
        assert!(g.buildings_reachable(0, 1));
        assert!(!g.buildings_reachable(0, 2));
        assert!(g.buildings_reachable(2, 2));
    }

    #[test]
    fn ideal_hops() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        // AP0 → building 1 (AP2): 0→1→2 = 2 hops.
        assert_eq!(g.ideal_hops_to_building(0, 1), Some(2));
        // AP0 → its own building: AP0 is already there, 0 hops.
        assert_eq!(g.ideal_hops_to_building(0, 0), Some(0));
        // Unreachable cluster.
        assert_eq!(g.ideal_hops_to_building(0, 2), None);
    }

    #[test]
    fn building_ap_lookup() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        assert_eq!(g.aps_in_building(0), vec![0, 1]);
        assert_eq!(g.aps_in_building(2), vec![3, 4]);
        assert!(g.aps_in_building(9).is_empty());
        assert_eq!(g.building_of(2), 1);
    }

    #[test]
    fn bucket_index_matches_linear_scan() {
        let aps = two_cluster_aps();
        let g = ApGraph::build(&aps, 50.0);
        for building in 0..10u32 {
            let linear: Vec<u32> = aps
                .iter()
                .filter(|a| a.building == building)
                .map(|a| a.id)
                .collect();
            assert_eq!(
                g.aps_of_building(building),
                &linear[..],
                "building {building}"
            );
        }
    }

    #[test]
    fn early_exit_ideal_hops_matches_full_bfs() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        let mut scratch = citymesh_graph::PlannerScratch::new();
        for src in 0..5u32 {
            for b in 0..4u32 {
                let full = {
                    let result = citymesh_graph::bfs(g.graph(), src);
                    let mut best = f64::INFINITY;
                    for id in 0..g.len() {
                        if g.building_of(id as u32) == b {
                            best = best.min(result.dist[id]);
                        }
                    }
                    best.is_finite().then_some(best as u64)
                };
                assert_eq!(
                    g.ideal_hops_to_building_with(src, b, &mut scratch),
                    full,
                    "src={src} building={b}"
                );
            }
        }
    }

    #[test]
    fn conduit_membership_matches_linear_scan() {
        use citymesh_geo::Segment;
        let aps = two_cluster_aps();
        let g = ApGraph::build(&aps, 50.0);
        // A conduit down the first cluster plus an overlapping one.
        let conduits = [
            OrientedRect::new(
                Segment::new(Point::new(0.0, 0.0), Point::new(80.0, 0.0)),
                30.0,
            ),
            OrientedRect::new(
                Segment::new(Point::new(40.0, 0.0), Point::new(540.0, 0.0)),
                30.0,
            ),
        ];
        let linear: Vec<u32> = aps
            .iter()
            .filter(|a| conduits.iter().any(|c| c.contains(a.pos)))
            .map(|a| a.id)
            .collect();
        let mut candidates = Vec::new();
        let mut got = Vec::new();
        g.for_each_ap_in_conduits(&conduits, &mut candidates, |id, pos| {
            assert_eq!(pos, aps[id as usize].pos);
            got.push(id);
        });
        assert_eq!(got, linear, "spatial index must equal the full scan");
    }

    #[test]
    fn broadcast_audience_query() {
        let g = ApGraph::build(&two_cluster_aps(), 50.0);
        let mut heard = Vec::new();
        g.for_each_in_range(Point::new(40.0, 0.0), |id, _| heard.push(id));
        heard.sort_unstable();
        // Within 50 m of (40,0): APs 0, 1, 2. (Note: includes self.)
        assert_eq!(heard, vec![0, 1, 2]);
    }

    #[test]
    fn exact_range_boundary_is_connected() {
        let aps = vec![ap(0, 0.0, 0.0, 0), ap(1, 50.0, 0.0, 1)];
        let g = ApGraph::build(&aps, 50.0);
        assert!(g.graph().has_edge(0, 1), "d == range must connect");
    }

    #[test]
    fn empty_input() {
        let g = ApGraph::build(&[], 50.0);
        assert!(g.is_empty());
        assert_eq!(g.num_components(), 0);
    }
}
