//! The secure message plane: deterministic per-building keys and an
//! amortized per-pair session-key cache.
//!
//! The paper's security story (§1 "Security", §3 step 4) rests on
//! *self-certifying names*: a building's identifier is the SHA-256 of
//! its public key, so authenticity never needs a certificate authority
//! mid-outage. This module supplies the run-time half of that story
//! for the simulation pipeline:
//!
//! * [`SecureState`] — one per experiment, installed by
//!   [`CityExperiment::enable_encryption`](crate::CityExperiment::enable_encryption):
//!   a deterministic registry of per-building
//!   [`Keypair`]s (drawn from a dedicated sub-stream of the experiment
//!   seed, so every worker and every rerun sees the same keys) plus a
//!   sharded cache of derived per-pair [`SessionKey`]s.
//! * Key rotation ([`SecureState::rotate_keys`]) — the churn analogue
//!   for key material: a building's keypair is regenerated (bumping
//!   its rotation epoch into the entropy derivation) and every cached
//!   session touching that building is evicted, exactly how the route
//!   cache treats a world event.
//!
//! The cache is the amortization argument made concrete: an X25519
//! exchange plus HKDF runs **once per src/dst pair**, after which every
//! message between the pair does only symmetric work. Shards are
//! `parking_lot`-free (`std::sync::RwLock`) and keyed by the unordered
//! pair, mirroring the session derivation's canonical ordering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use citymesh_crypto::{Keypair, NodeId, SessionKey};
use citymesh_simcore::{split_seed, substream_seed};

/// Sub-stream domain for per-building key entropy. Disjoint from the
/// simulation (`DOMAIN_SIM`-style) and message-id domains, so
/// enabling encryption never perturbs a delivery RNG stream.
pub const DOMAIN_KEYS: u64 = 0x5EC4;

/// Session-cache shards. Matches the route cache's shard count: enough
/// to keep 8–16 workers from serializing on one lock, few enough that
/// a full eviction sweep stays cheap.
const SHARDS: usize = 16;

/// Where a tampering adversary strikes, for fault-injection tests and
/// the auth-failure accounting path. The simulation itself never
/// corrupts a sealed message; this is the hook that proves the
/// receiver would notice if something did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TamperMode {
    /// Flip a bit in the HMAC-authenticated routing header.
    Header,
    /// Flip a bit in the AEAD ciphertext.
    Ciphertext,
}

/// Derives building `b`'s keypair at rotation epoch `rotation`.
///
/// Entropy is four words chained off
/// `substream_seed(seed, DOMAIN_KEYS, rotation ‖ b)` — a pure function
/// of `(seed, building, rotation)`, so the registry is identical
/// across workers, reruns, and rebuilds, and rotating a key is
/// deterministic too.
fn keypair_for(seed: u64, building: u32, rotation: u32) -> Keypair {
    let idx = (u64::from(rotation) << 32) | u64::from(building);
    let base = substream_seed(seed, DOMAIN_KEYS, idx);
    let mut entropy = [0u8; 32];
    for (i, chunk) in entropy.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&split_seed(base, i as u64).to_le_bytes());
    }
    Keypair::from_entropy(entropy)
}

/// One cache shard: unordered pair → derived session key.
type Shard = RwLock<HashMap<(u32, u32), Arc<SessionKey>>>;

/// The sharded per-pair session-key cache.
///
/// Reused exactly like the route cache: a hit is a shard read-lock and
/// an `Arc` clone (no allocation); a miss runs the expensive
/// derivation outside any lock and inserts, with benign races (two
/// workers deriving the same pair produce identical keys, so insertion
/// order cannot matter).
struct SessionCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SessionCache {
    fn new() -> Self {
        SessionCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Canonical unordered key plus its shard index (SplitMix-style
    /// scramble so adjacent building ids spread across shards).
    fn slot(&self, a: u32, b: u32) -> ((u32, u32), usize) {
        let key = if a <= b { (a, b) } else { (b, a) };
        let mut x = (u64::from(key.0) << 32) | u64::from(key.1);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (key, (x as usize) % SHARDS)
    }

    /// Returns the pair's session key, deriving it with `derive` on
    /// the first request. The boolean is `true` when this call did the
    /// derivation (schedule-dependent: racing workers may both miss).
    fn get_or_derive(
        &self,
        a: u32,
        b: u32,
        derive: impl FnOnce() -> Arc<SessionKey>,
    ) -> (Arc<SessionKey>, bool) {
        let (key, shard) = self.slot(a, b);
        if let Some(k) = self.shards[shard]
            .read()
            .expect("session shard poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(k), false);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Derivation runs outside the lock; a racing duplicate derives
        // the identical key, so last-write-wins is harmless.
        let derived = derive();
        let mut guard = self.shards[shard].write().expect("session shard poisoned");
        let entry = guard.entry(key).or_insert_with(|| Arc::clone(&derived));
        (Arc::clone(entry), true)
    }

    /// Evicts every cached session touching `building`.
    fn evict_endpoint(&self, building: u32) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut guard = shard.write().expect("session shard poisoned");
            let before = guard.len();
            guard.retain(|&(a, b), _| a != building && b != building);
            evicted += before - guard.len();
        }
        evicted
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("session shard poisoned").clear();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("session shard poisoned").len())
            .sum()
    }
}

/// Everything the encrypted flow mode needs, installed once per
/// experiment by
/// [`CityExperiment::enable_encryption`](crate::CityExperiment::enable_encryption)
/// and shared across clones behind an `Arc` — the stream engine's
/// degraded-twin experiment seals with the same registry and warms the
/// same cache as its primary.
pub struct SecureState {
    seed: u64,
    /// Per-building keypair at its current rotation epoch, plus the
    /// epoch itself. One lock for both: rotation swaps the keypair and
    /// bumps the counter atomically with respect to readers.
    registry: RwLock<Registry>,
    cache: SessionCache,
}

struct Registry {
    keys: Vec<Keypair>,
    rotations: Vec<u32>,
}

impl std::fmt::Debug for SecureState {
    /// Redacted: the registry holds secret scalars.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureState")
            .field("buildings", &self.buildings())
            .field("sessions", &self.sessions())
            .finish_non_exhaustive()
    }
}

impl SecureState {
    /// Builds the deterministic key registry for `buildings` buildings
    /// from a dedicated sub-stream of `seed`, with an empty session
    /// cache.
    pub fn new(seed: u64, buildings: usize) -> Self {
        let keys = (0..buildings as u32)
            .map(|b| keypair_for(seed, b, 0))
            .collect();
        SecureState {
            seed,
            registry: RwLock::new(Registry {
                keys,
                rotations: vec![0; buildings],
            }),
            cache: SessionCache::new(),
        }
    }

    /// Buildings covered by the registry.
    pub fn buildings(&self) -> usize {
        self.registry.read().expect("registry poisoned").keys.len()
    }

    /// The building's self-certifying identifier:
    /// `NodeId = SHA-256(public key)` at the current rotation epoch.
    pub fn node_id(&self, building: u32) -> NodeId {
        self.registry.read().expect("registry poisoned").keys[building as usize].node_id()
    }

    /// The building's current public key.
    pub fn public_key(&self, building: u32) -> [u8; 32] {
        self.registry.read().expect("registry poisoned").keys[building as usize].public
    }

    /// A clone of the building's current keypair — test/postbox
    /// plumbing, not a hot-path call.
    pub fn keypair(&self, building: u32) -> Keypair {
        self.registry.read().expect("registry poisoned").keys[building as usize].clone()
    }

    /// The building's rotation epoch (0 until the first
    /// [`SecureState::rotate_keys`]).
    pub fn rotation(&self, building: u32) -> u32 {
        self.registry.read().expect("registry poisoned").rotations[building as usize]
    }

    /// The pair's session key from the cache, deriving (X25519 + HKDF)
    /// on first use. The boolean reports whether this call derived —
    /// schedule-dependent (racing workers may double-derive), so it
    /// feeds digest-excluded telemetry only.
    pub fn session(&self, a: u32, b: u32) -> (Arc<SessionKey>, bool) {
        self.cache.get_or_derive(a, b, || {
            let reg = self.registry.read().expect("registry poisoned");
            let ours = &reg.keys[a as usize];
            let theirs = reg.keys[b as usize].public;
            Arc::new(
                SessionKey::derive(ours, &theirs)
                    .expect("registry keypairs are clamped; DH cannot hit a low-order point"),
            )
        })
    }

    /// Rotates `building`'s keypair — the key-material analogue of a
    /// churn event. The new keypair is drawn deterministically from the
    /// bumped rotation epoch, and every cached session touching the
    /// building is evicted (churn-style invalidation: peers must
    /// re-derive against the new key). Returns the sessions evicted.
    pub fn rotate_keys(&self, building: u32) -> usize {
        {
            let mut reg = self.registry.write().expect("registry poisoned");
            let rot = reg.rotations[building as usize] + 1;
            reg.rotations[building as usize] = rot;
            reg.keys[building as usize] = keypair_for(self.seed, building, rot);
        }
        self.cache.evict_endpoint(building)
    }

    /// Drops every cached session (the bench's cold-start reset).
    /// Keypairs are untouched.
    pub fn clear_sessions(&self) {
        self.cache.clear();
    }

    /// Cached sessions currently held.
    pub fn sessions(&self) -> usize {
        self.cache.len()
    }

    /// Cache hits so far. Schedule-dependent; never digest material.
    pub fn session_hits(&self) -> u64 {
        self.cache.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= derivations attempted) so far.
    /// Schedule-dependent; never digest material.
    pub fn session_misses(&self) -> u64 {
        self.cache.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_deterministic() {
        let a = SecureState::new(7, 20);
        let b = SecureState::new(7, 20);
        for building in 0..20 {
            assert_eq!(a.node_id(building), b.node_id(building));
            assert_eq!(a.public_key(building), b.public_key(building));
        }
        let c = SecureState::new(8, 20);
        assert_ne!(a.public_key(0), c.public_key(0), "seed must reach keys");
    }

    #[test]
    fn node_id_certifies_the_public_key() {
        let s = SecureState::new(3, 4);
        let id = s.node_id(2);
        assert!(id.certifies(&s.public_key(2)));
        assert!(!id.certifies(&s.public_key(3)));
    }

    #[test]
    fn session_cache_amortizes_derivation() {
        let s = SecureState::new(11, 10);
        let (k1, derived1) = s.session(1, 2);
        assert!(derived1, "first request derives");
        let (k2, derived2) = s.session(2, 1);
        assert!(!derived2, "reverse direction hits the same entry");
        assert!(Arc::ptr_eq(&k1, &k2));
        assert_eq!(s.sessions(), 1);
        assert_eq!(s.session_hits(), 1);
        assert_eq!(s.session_misses(), 1);
    }

    #[test]
    fn sessions_agree_between_endpoints() {
        // The canonical derivation means either endpoint opening with
        // the cached key sees the other's sealed bytes.
        let s = SecureState::new(5, 6);
        let (k, _) = s.session(0, 4);
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        k.seal_into(99, b"hdr", b"between 0 and 4", &mut sealed);
        k.open_into(99, b"hdr", &sealed, &mut opened).unwrap();
        assert_eq!(opened, b"between 0 and 4");
    }

    #[test]
    fn rotation_evicts_only_touching_sessions() {
        let s = SecureState::new(13, 8);
        s.session(0, 1);
        s.session(0, 2);
        s.session(3, 4);
        assert_eq!(s.sessions(), 3);
        let before = s.public_key(0);
        let evicted = s.rotate_keys(0);
        assert_eq!(evicted, 2, "both sessions touching building 0");
        assert_eq!(s.sessions(), 1, "the 3↔4 session survives");
        assert_eq!(s.rotation(0), 1);
        assert_ne!(s.public_key(0), before, "rotation regenerates the key");
        // Re-deriving after rotation yields a *different* session key.
        let (old_k, _) = s.session(3, 4);
        let (new_k, derived) = s.session(0, 1);
        assert!(derived, "evicted pair re-derives");
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        new_k.seal_into(1, b"", b"post-rotation", &mut sealed);
        assert!(old_k.open_into(1, b"", &sealed, &mut opened).is_err());
    }

    #[test]
    fn rotation_is_deterministic() {
        let a = SecureState::new(21, 5);
        let b = SecureState::new(21, 5);
        a.rotate_keys(3);
        b.rotate_keys(3);
        assert_eq!(a.public_key(3), b.public_key(3));
    }

    #[test]
    fn clear_sessions_keeps_keys() {
        let s = SecureState::new(17, 4);
        let pk = s.public_key(1);
        s.session(1, 2);
        s.clear_sessions();
        assert_eq!(s.sessions(), 0);
        assert_eq!(s.public_key(1), pk);
    }

    #[test]
    fn debug_is_redacted() {
        let s = SecureState::new(1, 2);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("SecureState"));
        assert!(!dbg.contains("keys"), "no key material in Debug: {dbg}");
    }

    #[test]
    fn registry_keys_drive_the_postbox_flow() {
        // Paper §3 step 4 end-to-end with registry identities: a sender
        // seals to the recipient building's registry public key, the
        // postbox caches the opaque `SealedMessage`, and the recipient
        // opens with its registry keypair on check-in. A tampered copy
        // is reported as an auth failure and stays stored — the postbox
        // never acknowledges what the owner could not read.
        use crate::postbox::Postbox;
        use citymesh_crypto::{PostboxAddress, SealedMessage};
        use citymesh_simcore::SimTime;

        let state = SecureState::new(51, 8);
        let recipient = 3u32;
        let addr = PostboxAddress {
            public_key: state.public_key(recipient),
            building_id: recipient,
        };
        let owner = state.keypair(recipient);

        let mut pb = Postbox::with_defaults();
        pb.register(owner.node_id());

        let aad_for = |msg_id: u64| msg_id.to_le_bytes().to_vec();
        let good = SealedMessage::seal(&addr, [0x11; 32], &aad_for(1), b"meet at the library")
            .expect("registry keys are never degenerate");
        let mut bad = SealedMessage::seal(&addr, [0x22; 32], &aad_for(2), b"ignore this")
            .expect("registry keys are never degenerate");
        bad.ciphertext[0] ^= 0x01;

        let now = SimTime::from_secs_f64(0.0);
        pb.deposit(owner.node_id(), 1, good, now).unwrap();
        pb.deposit(owner.node_id(), 2, bad, now).unwrap();

        let (opened, failed) = pb
            .retrieve_and_open(&owner, recipient, aad_for)
            .expect("owner is registered");
        assert_eq!(opened.len(), 1);
        assert_eq!(opened[0], (1, b"meet at the library".to_vec()));
        assert_eq!(failed, vec![2], "tampering is an explicit outcome");
        assert_eq!(
            pb.total_messages(),
            1,
            "the unopened message must stay stored; only opened mail is acked"
        );
    }
}
