//! Event-driven delivery simulation (paper §4).
//!
//! Replays one CityMesh message through a concrete AP placement: the
//! source AP broadcasts, every AP in radio range receives, each
//! receiver runs the real [`ApAgent`] logic (duplicate suppression +
//! conduit membership), and relays fire after a small random MAC
//! jitter. The run records everything the paper's metrics need:
//! whether a destination-building AP ever received the packet
//! (*deliverability*), how many broadcasts happened (the overhead
//! numerator), and the per-AP roles for Figure-7-style renders.
//!
//! Two entry points share one kernel:
//!
//! * [`simulate_delivery`] — allocates its working state per call;
//!   convenient for one-off runs and exactly as before.
//! * [`simulate_delivery_into`] — runs against a caller-owned
//!   [`DeliveryScratch`], touching the heap **zero times** in steady
//!   state. The fleet engine keeps one scratch per worker and replays
//!   millions of flows through it; both paths are bit-identical.

use citymesh_geo::OrientedRect;
use citymesh_map::CityMap;
use citymesh_net::{CityMeshHeader, MessageKind, RouteEncoding};
use citymesh_simcore::{SimRng, SimTime, Simulation};
use citymesh_telemetry::{FlowTracer, TraceConfig, TraceEvent};

use crate::agent::{ApAgent, RebroadcastScope};
use crate::apgraph::ApGraph;
use crate::conduit::reconstruct_conduits;
use crate::faults::{combined_loss, FaultState};
use crate::pipeline::{require_probability, ConfigError};

/// Simulation knobs.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryParams {
    /// Rebroadcast geometry policy.
    pub scope: RebroadcastScope,
    /// Maximum per-relay MAC jitter; each relay waits
    /// `U(min_jitter, max_jitter)` before transmitting.
    pub max_jitter: SimTime,
    /// Minimum per-relay jitter (processing latency floor).
    pub min_jitter: SimTime,
    /// Hard stop: undelivered after this long counts as failure.
    pub horizon: SimTime,
    /// Probability that any individual frame reception is lost to
    /// collisions/fading (0 = the paper's idealized medium). The
    /// broadcast redundancy of conduit relaying is what absorbs this:
    /// a receiver usually hears the same packet from several
    /// neighbors.
    pub reception_loss: f64,
}

impl Default for DeliveryParams {
    fn default() -> Self {
        DeliveryParams {
            scope: RebroadcastScope::Building,
            min_jitter: SimTime::from_micros(500),
            max_jitter: SimTime::from_millis(5),
            horizon: SimTime::from_secs_f64(60.0),
            reception_loss: 0.0,
        }
    }
}

impl DeliveryParams {
    /// Validates the simulation knobs: a positive horizon, an ordered
    /// jitter window, and a reception loss that is a probability.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.horizon <= SimTime::ZERO {
            return Err(ConfigError::NotPositive {
                field: "horizon",
                value: self.horizon.as_secs_f64(),
            });
        }
        if self.min_jitter > self.max_jitter {
            return Err(ConfigError::OutOfRange {
                field: "min_jitter",
                value: self.min_jitter.as_secs_f64(),
                min: 0.0,
                max: self.max_jitter.as_secs_f64(),
            });
        }
        require_probability("reception_loss", self.reception_loss)
    }
}

/// Explicit transmission-overhead semantics, replacing the ambiguous
/// bare `Option` (which conflated "the flow failed" with "there is no
/// ideal-hops baseline to divide by").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OverheadOutcome {
    /// Delivered with a baseline: broadcasts ÷ ideal hops (or the raw
    /// broadcast count for a same-building flow whose baseline is 0).
    Measured(f64),
    /// The message was never delivered; overhead is undefined because
    /// the broadcasts bought nothing.
    NotDelivered,
    /// Delivered, but no ideal-unicast baseline exists (ground truth
    /// found no AP-graph path to divide by).
    NoBaseline,
}

impl OverheadOutcome {
    /// Classifies one measurement.
    pub fn measure(delivered: bool, broadcasts: u64, ideal_hops: Option<u64>) -> Self {
        match (delivered, ideal_hops) {
            (false, _) => OverheadOutcome::NotDelivered,
            (true, None) => OverheadOutcome::NoBaseline,
            (true, Some(h)) if h > 0 => OverheadOutcome::Measured(broadcasts as f64 / h as f64),
            (true, Some(_)) => OverheadOutcome::Measured(broadcasts as f64),
        }
    }

    /// The measured ratio, `None` for both non-measured cases (the
    /// legacy `Option` view).
    pub fn value(&self) -> Option<f64> {
        match self {
            OverheadOutcome::Measured(v) => Some(*v),
            _ => None,
        }
    }
}

/// What one AP did during the run (for rendering and assertions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApRole {
    /// Never received the packet.
    Silent,
    /// Received at least once but never transmitted (outside conduit,
    /// or TTL exhausted).
    HeardOnly,
    /// Transmitted the packet (source or relay).
    Relayed,
}

/// The outcome of one simulated message.
#[derive(Clone, Debug, PartialEq)]
pub struct DeliveryReport {
    /// Whether an AP in the destination building received the packet.
    pub delivered: bool,
    /// When the first destination-building AP received it.
    pub first_delivery: Option<SimTime>,
    /// Total packet broadcasts (the overhead numerator; includes the
    /// source's initial transmission).
    pub broadcasts: u64,
    /// Total frame receptions across all APs.
    pub receptions: u64,
    /// Receptions dropped as duplicates.
    pub duplicates: u64,
    /// Per-AP role, indexed by AP id.
    pub roles: Vec<ApRole>,
}

impl DeliveryReport {
    /// Transmission overhead versus an ideal unicast path of
    /// `ideal_hops` transmissions (paper §4: "the ratio of the number
    /// of packet broadcasts … to the minimum number of transmissions
    /// necessary"), with the two non-measurable cases kept distinct:
    /// [`OverheadOutcome::NotDelivered`] (the flow failed, so the
    /// broadcasts bought nothing) versus [`OverheadOutcome::NoBaseline`]
    /// (delivered, but ground truth has no ideal path to divide by).
    pub fn overhead_outcome(&self, ideal_hops: Option<u64>) -> OverheadOutcome {
        OverheadOutcome::measure(self.delivered, self.broadcasts, ideal_hops)
    }

    /// Flattened view of [`DeliveryReport::overhead_outcome`].
    ///
    /// Contract: `None` means *either* the message was not delivered
    /// *or* no ideal-hops baseline exists — callers that must tell
    /// the two apart use `overhead_outcome` instead. Aggregations that
    /// only average measured overheads (the paper's ≈13× figure) can
    /// keep filter-mapping on this.
    pub fn overhead(&self, ideal_hops: Option<u64>) -> Option<f64> {
        self.overhead_outcome(ideal_hops).value()
    }

    /// Number of APs that relayed.
    pub fn relay_count(&self) -> usize {
        self.roles.iter().filter(|r| **r == ApRole::Relayed).count()
    }
}

/// The only event: an AP transmits the packet.
#[derive(Debug)]
struct Tx(u32);

/// Duplicate-cache capacity for simulated agents. Every flow carries
/// exactly one message id and agents are reset between flows, so
/// eviction can never fire and behavior is identical to the deployed
/// 4096-ID cache ([`ApAgent::with_seen_capacity`]) — without the two
/// large hash/deque allocations per touched AP per flow that used to
/// dominate fleet wall time.
const SIM_SEEN_CAPACITY: usize = 4;

/// Reusable working state for [`simulate_delivery_into`]: everything
/// the delivery kernel used to allocate per call.
///
/// One scratch serves any number of sequential flows (even against
/// different worlds). Buffers grow to the high-water mark of the flows
/// seen and are then reused, so a warmed scratch runs the kernel with
/// **zero heap allocations**:
///
/// * the agent slab — indexed by AP id, with a per-slot generation
///   stamp so "clearing" between flows is a single counter increment
///   (stale slots are lazily reset on first touch, O(touched) total,
///   never O(total APs));
/// * the event-queue storage ([`Simulation::reset`] keeps the heap's
///   allocation);
/// * the per-agent duplicate caches ([`crate::agent::SeenCache::clear`]
///   keeps both allocations);
/// * the pending-relay buffer and the [`DeliveryReport`] role vector.
///
/// Reuse is invisible in the results: a dirty scratch and a fresh one
/// produce bit-identical [`DeliveryReport`]s (property-tested in
/// `crates/core/tests/properties.rs`).
#[derive(Debug)]
pub struct DeliveryScratch {
    sim: Simulation<Tx>,
    /// Lazily populated agent slab indexed by AP id.
    agents: Vec<Option<ApAgent>>,
    /// Generation stamp per slot; a slot is live iff its stamp equals
    /// [`DeliveryScratch::gen`].
    agent_gen: Vec<u64>,
    /// Current flow generation; bumped by every `begin`.
    gen: u64,
    pending: Vec<(SimTime, u32)>,
    report: DeliveryReport,
    /// Reusable header for `CityExperiment::simulate_flow_with` (the
    /// per-flow message id varies, the waypoint buffer is recycled).
    pub(crate) header: CityMeshHeader,
    /// Flow tracer (disabled by default). When enabled, the kernel
    /// records per-event telemetry into its pre-allocated ring; when
    /// disabled every tracer call is a branch, preserving the
    /// zero-allocation steady state.
    pub(crate) tracer: FlowTracer,
    /// Secure-plane buffers, used only by
    /// `CityExperiment::simulate_flow_secure_with`: the deterministic
    /// plaintext payload, the sealed ciphertext‖tag, and the
    /// receiver-side opened plaintext. Their capacities warm up on the
    /// first sealed flow and are reused after that, keeping the
    /// encrypted steady state allocation-free.
    pub(crate) payload: Vec<u8>,
    pub(crate) sealed_buf: Vec<u8>,
    pub(crate) opened_buf: Vec<u8>,
    /// Session keys this scratch's owner derived on cache misses —
    /// the amortized cost. Schedule-dependent (racing workers may
    /// double-derive), so telemetry-only.
    pub(crate) keys_derived: u64,
}

impl Default for DeliveryScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl DeliveryScratch {
    /// Creates an empty scratch. All buffers start unallocated and
    /// grow on first use. Tracing is disabled (zero overhead); use
    /// [`DeliveryScratch::with_tracing`] to record flow telemetry.
    pub fn new() -> Self {
        Self::with_tracing(TraceConfig::off())
    }

    /// Creates a scratch whose embedded [`FlowTracer`] follows `cfg`.
    /// The tracer's ring is allocated here, once, so tracing itself is
    /// allocation-free in steady state (captures still copy the ring).
    pub fn with_tracing(cfg: TraceConfig) -> Self {
        DeliveryScratch {
            sim: Simulation::new(),
            agents: Vec::new(),
            agent_gen: Vec::new(),
            gen: 0,
            pending: Vec::new(),
            report: DeliveryReport {
                delivered: false,
                first_delivery: None,
                broadcasts: 0,
                receptions: 0,
                duplicates: 0,
                roles: Vec::new(),
            },
            // Placeholder (never observed): `reuse_for` rewrites every
            // field before the header reaches the kernel.
            header: CityMeshHeader {
                kind: MessageKind::Data,
                ttl: 64,
                msg_id: 0,
                conduit_width_dm: 0,
                waypoints: Vec::new(),
                encoding: RouteEncoding::Absolute,
            },
            tracer: FlowTracer::new(cfg),
            payload: Vec::new(),
            sealed_buf: Vec::new(),
            opened_buf: Vec::new(),
            keys_derived: 0,
        }
    }

    /// Session-key derivations performed through this scratch by the
    /// secure flow path — the amortized (cache-miss) cost. Schedule-
    /// dependent across workers, so engines report it as digest-
    /// excluded telemetry only. `0` on the plaintext path.
    pub fn keys_derived(&self) -> u64 {
        self.keys_derived
    }

    /// The report of the most recent [`simulate_delivery_into`] run.
    pub fn report(&self) -> &DeliveryReport {
        &self.report
    }

    /// Read access to the embedded flow tracer.
    pub fn tracer(&self) -> &FlowTracer {
        &self.tracer
    }

    /// Mutable access to the embedded flow tracer (used by callers to
    /// set the next flow key or drain captured postmortems).
    pub fn tracer_mut(&mut self) -> &mut FlowTracer {
        &mut self.tracer
    }

    /// Consumes the scratch, yielding the last run's report without
    /// copying its role vector.
    pub fn into_report(self) -> DeliveryReport {
        self.report
    }

    /// Prepares the scratch for a fresh flow over `n_aps` APs: bumps
    /// the generation, rewinds the simulation clock, and resets the
    /// report in place.
    fn begin(&mut self, n_aps: usize, horizon: SimTime) {
        self.gen += 1;
        if self.agents.len() < n_aps {
            self.agents.resize_with(n_aps, || None);
            self.agent_gen.resize(n_aps, 0);
        }
        self.sim.reset();
        self.sim.set_horizon(Some(horizon));
        self.pending.clear();
        let r = &mut self.report;
        r.delivered = false;
        r.first_delivery = None;
        r.broadcasts = 0;
        r.receptions = 0;
        r.duplicates = 0;
        r.roles.clear();
        r.roles.resize(n_aps, ApRole::Silent);
    }
}

/// Returns the live agent for `id`, lazily constructing it on first
/// ever touch and resetting it on first touch of this generation.
///
/// A free function (not a `DeliveryScratch` method) so the event loop
/// can hold disjoint `&mut` borrows of the scratch's fields.
fn touch_agent<'a>(
    agents: &'a mut [Option<ApAgent>],
    agent_gen: &mut [u64],
    gen: u64,
    apg: &ApGraph,
    scope: RebroadcastScope,
    id: u32,
) -> &'a mut ApAgent {
    let i = id as usize;
    if agent_gen[i] != gen {
        agent_gen[i] = gen;
        match &mut agents[i] {
            Some(a) => a.reset_for(apg.position(id), apg.building_of(id), scope),
            slot => {
                *slot = Some(ApAgent::with_seen_capacity(
                    apg.position(id),
                    apg.building_of(id),
                    scope,
                    SIM_SEEN_CAPACITY,
                ))
            }
        }
    }
    agents[i].as_mut().expect("slot populated above")
}

/// Simulates one message from `src_ap` with routing state `header`,
/// allocating working state per call.
///
/// `rng` drives MAC jitter only; topology comes fixed from `apg`.
///
/// This is the convenience wrapper around [`simulate_delivery_into`]:
/// it reconstructs the conduits from the header and spins up a
/// one-shot [`DeliveryScratch`], so existing callers compile and
/// behave exactly as before. Hot loops should hold a scratch and
/// pre-reconstructed conduits instead.
pub fn simulate_delivery(
    map: &CityMap,
    apg: &ApGraph,
    header: &CityMeshHeader,
    src_ap: u32,
    params: DeliveryParams,
    rng: &mut SimRng,
) -> DeliveryReport {
    let conduits = reconstruct_conduits(map, &header.waypoints, header.conduit_width_m());
    let mut scratch = DeliveryScratch::new();
    simulate_delivery_into(
        map,
        apg,
        header,
        &conduits,
        src_ap,
        params,
        rng,
        &mut scratch,
    );
    scratch.into_report()
}

/// The allocation-free delivery kernel: simulates one message using
/// caller-owned working state.
///
/// `conduits` must be the reconstruction of `header`'s waypoints at
/// the header's (decimeter-quantized) width — precompute once per
/// route with [`reconstruct_conduits`] and amortize across every flow
/// sharing it (`PlannedFlow` caches exactly this). The returned
/// reference points into `scratch` and is valid until the next run.
///
/// Steady state (scratch warmed past the workload's high-water marks)
/// performs **zero heap allocations**; `tests/zero_alloc.rs` in
/// `citymesh-fleet` enforces this with a counting global allocator.
///
/// # Panics
/// Panics when `src_ap` is outside `apg`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_delivery_into<'a>(
    map: &CityMap,
    apg: &ApGraph,
    header: &CityMeshHeader,
    conduits: &[OrientedRect],
    src_ap: u32,
    params: DeliveryParams,
    rng: &mut SimRng,
    scratch: &'a mut DeliveryScratch,
) -> &'a DeliveryReport {
    simulate_delivery_faulted(
        map, apg, header, conduits, src_ap, params, None, rng, scratch,
    )
}

/// [`simulate_delivery_into`] under a materialized fault scenario.
///
/// Fault semantics, chosen so `faults == None` (or an all-`Up` state)
/// replays the healthy kernel **bit for bit**, RNG draws included:
///
/// * a **failed** AP neither transmits nor receives — it is skipped
///   *before* any loss draw, so dead radios never consume randomness;
///   a failed source produces an immediate clean failure (zero
///   broadcasts, empty event queue — the run terminates, it does not
///   hang);
/// * a **degraded** AP receives through a lossier radio: its
///   per-frame loss is `1 − (1−base)(1−extra)`;
/// * delivery still means "an AP in the destination building received
///   the packet" — but only *live* APs can receive, so a dark
///   destination building can never report delivery.
///
/// Faults are read-only state shared by every worker; all scheduling
/// stays inside `scratch`, so the zero-allocation steady state is
/// preserved (enforced with faults enabled in
/// `crates/fleet/tests/zero_alloc.rs`).
#[allow(clippy::too_many_arguments)]
pub fn simulate_delivery_faulted<'a>(
    map: &CityMap,
    apg: &ApGraph,
    header: &CityMeshHeader,
    conduits: &[OrientedRect],
    src_ap: u32,
    params: DeliveryParams,
    faults: Option<&FaultState>,
    rng: &mut SimRng,
    scratch: &'a mut DeliveryScratch,
) -> &'a DeliveryReport {
    assert!((src_ap as usize) < apg.len(), "source AP out of range");
    scratch.begin(apg.len(), params.horizon);
    // A dead source cannot even make the first transmission: fail
    // cleanly with an empty schedule.
    if faults.is_some_and(|f| f.is_failed(src_ap)) {
        return &scratch.report;
    }
    let dst_building = header.destination();
    let DeliveryScratch {
        sim,
        agents,
        agent_gen,
        gen,
        pending,
        report,
        tracer,
        ..
    } = scratch;
    let gen = *gen;

    // The source transmits unconditionally at t = 0 and will treat its
    // own message as seen.
    touch_agent(agents, agent_gen, gen, apg, params.scope, src_ap)
        .seen
        .check_and_insert(header.msg_id);
    report.roles[src_ap as usize] = ApRole::Relayed;
    sim.schedule_at(SimTime::ZERO, Tx(src_ap));

    // If the source already sits in the destination building, the
    // local postbox is reached immediately.
    if apg.building_of(src_ap) == dst_building {
        report.delivered = true;
        report.first_delivery = Some(SimTime::ZERO);
        tracer.record(TraceEvent::Delivered {
            ap: src_ap,
            at_ns: 0,
        });
    }

    let jitter_span = params
        .max_jitter
        .saturating_since(params.min_jitter)
        .as_nanos()
        .max(1);

    sim.run(|sim, Tx(ap)| {
        report.broadcasts += 1;
        let now = sim.now();
        tracer.record(TraceEvent::Broadcast {
            ap,
            at_ns: now.as_nanos(),
        });
        pending.clear();
        let tx_pos = apg.position(ap);
        apg.for_each_in_range(tx_pos, |rx, _| {
            if rx == ap {
                return; // no self-reception
            }
            // Failed radios are gone from the air, not merely lossy:
            // skip them before the loss draw so the healthy APs' RNG
            // stream is untouched by how many neighbors died.
            if faults.is_some_and(|f| f.is_failed(rx)) {
                return;
            }
            let loss = match faults {
                Some(f) => combined_loss(params.reception_loss, f.extra_loss(rx)),
                None => params.reception_loss,
            };
            if loss > 0.0 && rng.chance(loss) {
                return; // frame lost to collision/fading
            }
            report.receptions += 1;
            let agent = touch_agent(agents, agent_gen, gen, apg, params.scope, rx);
            let action = agent.handle_with_conduits(header, map, conduits);
            if action == crate::agent::Action::IGNORE && report.roles[rx as usize] != ApRole::Silent
            {
                report.duplicates += 1;
                tracer.record(TraceEvent::Duplicate {
                    ap: rx,
                    at_ns: now.as_nanos(),
                });
                return;
            }
            if report.roles[rx as usize] == ApRole::Silent {
                report.roles[rx as usize] = ApRole::HeardOnly;
            }
            if action.deliver && report.first_delivery.is_none() {
                report.delivered = true;
                report.first_delivery = Some(now);
                tracer.record(TraceEvent::Delivered {
                    ap: rx,
                    at_ns: now.as_nanos(),
                });
            }
            if action.rebroadcast {
                report.roles[rx as usize] = ApRole::Relayed;
                let delay =
                    SimTime::from_nanos(params.min_jitter.as_nanos() + rng.below(jitter_span));
                pending.push((now + delay, rx));
            }
        });
        for (at, rx) in pending.drain(..) {
            sim.schedule_at(at, Tx(rx));
        }
    });

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_aps, postbox_ap};
    use crate::{BuildingGraph, BuildingGraphParams};
    use citymesh_geo::{Point, Polygon, Rect};

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// A straight street of 10 buildings, 30 m pitch; range 50 m.
    fn street() -> (CityMap, ApGraph, BuildingGraph, Vec<crate::Ap>) {
        let map = CityMap::new(
            "street",
            (0..10)
                .map(|i| square_at(i as f64 * 30.0, 0.0, 12.0))
                .collect(),
            vec![],
        );
        let mut rng = SimRng::new(1);
        let aps = place_aps(&map, 100.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        (map, apg, bg, aps)
    }

    fn route_header(bg: &BuildingGraph, src: u32, dst: u32) -> CityMeshHeader {
        let route = crate::plan_route(bg, src, dst).unwrap();
        let compressed = crate::compress_route(bg, &route, 50.0);
        CityMeshHeader::new(777, 50.0, compressed.unwrap().waypoints)
    }

    #[test]
    fn straight_street_delivers() {
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let mut rng = SimRng::new(2);
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(report.delivered);
        assert!(report.first_delivery.is_some());
        assert!(report.broadcasts >= 5, "a 270 m street needs several hops");
        assert!(report.receptions > report.broadcasts);
        // Every relay transmitted exactly once.
        assert_eq!(report.relay_count() as u64, report.broadcasts);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            simulate_delivery(
                &map,
                &apg,
                &header,
                src,
                DeliveryParams::default(),
                &mut rng,
            )
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.broadcasts, b.broadcasts);
        assert_eq!(a.receptions, b.receptions);
        assert_eq!(a.first_delivery, b.first_delivery);
        assert_eq!(a.roles, b.roles);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_allocation() {
        let (map, apg, bg, aps) = street();
        let mut scratch = DeliveryScratch::new();
        // Several distinct flows through ONE scratch, each compared to
        // the fresh-allocation wrapper with an identically seeded RNG.
        for (src_b, dst_b, seed) in [(0u32, 9u32, 5u64), (9, 0, 6), (2, 7, 7), (0, 9, 5)] {
            let header = route_header(&bg, src_b, dst_b);
            let src = postbox_ap(&aps, &map, src_b).unwrap();
            let mut fresh_rng = SimRng::new(seed);
            let fresh = simulate_delivery(
                &map,
                &apg,
                &header,
                src,
                DeliveryParams::default(),
                &mut fresh_rng,
            );
            let conduits = reconstruct_conduits(&map, &header.waypoints, header.conduit_width_m());
            let mut rng = SimRng::new(seed);
            let reused = simulate_delivery_into(
                &map,
                &apg,
                &header,
                &conduits,
                src,
                DeliveryParams::default(),
                &mut rng,
                &mut scratch,
            );
            assert_eq!(
                *reused, fresh,
                "scratch reuse diverged for {src_b}->{dst_b}"
            );
        }
    }

    #[test]
    fn dirty_scratch_cannot_leak_seen_or_role_state() {
        let (map, apg, bg, aps) = street();
        // Flow A floods the whole street and marks most APs as relays,
        // filling every agent's seen cache with msg_id 777.
        let header_a = route_header(&bg, 0, 9);
        let src_a = postbox_ap(&aps, &map, 0).unwrap();
        let mut scratch = DeliveryScratch::new();
        let conduits_a =
            reconstruct_conduits(&map, &header_a.waypoints, header_a.conduit_width_m());
        let mut rng = SimRng::new(1);
        simulate_delivery_into(
            &map,
            &apg,
            &header_a,
            &conduits_a,
            src_a,
            DeliveryParams::default(),
            &mut rng,
            &mut scratch,
        );
        assert!(
            scratch.report().relay_count() > 3,
            "flow A must dirty state"
        );

        // Flow B reuses the SAME msg_id (777, from route_header) on a
        // different pair. Leaked seen state would suppress every
        // reception; leaked roles would show as phantom relays.
        let header_b = route_header(&bg, 5, 2);
        assert_eq!(header_a.msg_id, header_b.msg_id, "test needs a reused id");
        let src_b = postbox_ap(&aps, &map, 5).unwrap();
        let mut fresh_rng = SimRng::new(2);
        let fresh = simulate_delivery(
            &map,
            &apg,
            &header_b,
            src_b,
            DeliveryParams::default(),
            &mut fresh_rng,
        );
        let conduits_b =
            reconstruct_conduits(&map, &header_b.waypoints, header_b.conduit_width_m());
        let mut rng = SimRng::new(2);
        let reused = simulate_delivery_into(
            &map,
            &apg,
            &header_b,
            &conduits_b,
            src_b,
            DeliveryParams::default(),
            &mut rng,
            &mut scratch,
        );
        assert!(reused.delivered, "leaked seen state would kill delivery");
        assert_eq!(*reused, fresh);
        // APs the narrow B-conduit never reaches must read Silent even
        // though flow A marked them Relayed in the same buffer.
        assert!(
            fresh.roles.contains(&ApRole::Silent),
            "sanity: flow B leaves some APs silent"
        );
    }

    #[test]
    fn one_scratch_serves_different_worlds() {
        // A scratch warmed on the 10-building street keeps working on
        // a larger city (slab regrows) and back again (slab oversized).
        let (map, apg, bg, aps) = street();
        let big_map = {
            let footprints = (0..30)
                .map(|i| square_at(i as f64 * 30.0, 0.0, 12.0))
                .collect();
            CityMap::new("long-street", footprints, vec![])
        };
        let mut rng = SimRng::new(9);
        let big_aps = place_aps(&big_map, 100.0, &mut rng);
        let big_apg = ApGraph::build(&big_aps, 50.0);
        let big_bg = BuildingGraph::build(
            &big_map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );

        let mut scratch = DeliveryScratch::new();
        for (map, apg, bg, aps) in [
            (&map, &apg, &bg, &aps),
            (&big_map, &big_apg, &big_bg, &big_aps),
            (&map, &apg, &bg, &aps),
        ] {
            let dst = (map.len() - 1) as u32;
            let header = route_header(bg, 0, dst);
            let src = postbox_ap(aps, map, 0).unwrap();
            let conduits = reconstruct_conduits(map, &header.waypoints, header.conduit_width_m());
            let mut fresh_rng = SimRng::new(3);
            let fresh = simulate_delivery(
                map,
                apg,
                &header,
                src,
                DeliveryParams::default(),
                &mut fresh_rng,
            );
            let mut rng = SimRng::new(3);
            let reused = simulate_delivery_into(
                map,
                apg,
                &header,
                &conduits,
                src,
                DeliveryParams::default(),
                &mut rng,
                &mut scratch,
            );
            assert_eq!(*reused, fresh, "world {} diverged", map.name());
            assert_eq!(reused.roles.len(), apg.len(), "roles sized to this world");
        }
    }

    #[test]
    fn unreachable_destination_fails_cleanly() {
        // Two street islands 500 m apart.
        let mut footprints: Vec<Polygon> = (0..3)
            .map(|i| square_at(i as f64 * 30.0, 0.0, 12.0))
            .collect();
        footprints.extend((0..3).map(|i| square_at(700.0 + i as f64 * 30.0, 0.0, 12.0)));
        let map = CityMap::new("islands", footprints, vec![]);
        let mut rng = SimRng::new(3);
        let aps = place_aps(&map, 100.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let src_building = map.nearest_building(Point::new(0.0, 0.0)).unwrap().id;
        let dst_building = map.nearest_building(Point::new(760.0, 0.0)).unwrap().id;
        // Force a header straight across the gap (a sender with a map
        // would not even try; this exercises network behaviour).
        let header = CityMeshHeader::new(1, 50.0, vec![src_building, dst_building]);
        let src = postbox_ap(&aps, &map, src_building).unwrap();
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(!report.delivered);
        assert!(report.first_delivery.is_none());
        assert!(report.overhead(None).is_none());
        // Only the source island ever transmits.
        assert!(report.broadcasts <= aps.len() as u64 / 2 + 1);
    }

    #[test]
    fn conduit_confines_the_flood() {
        // A wide field of buildings; route along the bottom edge. APs
        // far above the conduit must stay silent.
        let mut footprints = Vec::new();
        for y in 0..6 {
            for x in 0..8 {
                footprints.push(square_at(x as f64 * 30.0, y as f64 * 30.0, 12.0));
            }
        }
        let map = CityMap::new("field", footprints, vec![]);
        let mut rng = SimRng::new(4);
        let aps = place_aps(&map, 100.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        let src = map.nearest_building(Point::new(6.0, 6.0)).unwrap().id;
        let dst = map.nearest_building(Point::new(216.0, 6.0)).unwrap().id;
        let header = route_header(&bg, src, dst);
        let src_ap = postbox_ap(&aps, &map, src).unwrap();
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src_ap,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(report.delivered);
        // APs in the top rows (y > 120 m: > 2 building rows above the
        // conduit) never relay.
        for ap in &aps {
            if ap.pos.y > 120.0 {
                assert_ne!(
                    report.roles[ap.id as usize],
                    ApRole::Relayed,
                    "AP {} at {:?} should be outside the conduit",
                    ap.id,
                    ap.pos
                );
            }
        }
        // But the flood did not cover everything either.
        assert!(report.relay_count() < aps.len());
    }

    #[test]
    fn ap_scope_relays_no_more_than_building_scope() {
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let run = |scope| {
            let mut rng = SimRng::new(6);
            simulate_delivery(
                &map,
                &apg,
                &header,
                src,
                DeliveryParams {
                    scope,
                    ..DeliveryParams::default()
                },
                &mut rng,
            )
        };
        let by_building = run(RebroadcastScope::Building);
        let by_pos = run(RebroadcastScope::ApPosition);
        assert!(by_building.delivered);
        assert!(by_pos.broadcasts <= by_building.broadcasts);
    }

    #[test]
    fn same_building_delivery_is_instant() {
        let (map, apg, _, aps) = street();
        let header = CityMeshHeader::new(9, 50.0, vec![3]);
        let src = postbox_ap(&aps, &map, 3).unwrap();
        let mut rng = SimRng::new(7);
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(report.delivered);
        assert_eq!(report.first_delivery, Some(SimTime::ZERO));
    }

    #[test]
    fn broadcast_redundancy_absorbs_moderate_loss() {
        // The conduit's multi-relay redundancy should keep delivering
        // under substantial per-frame loss, and total loss must fail.
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let delivered_at = |loss: f64| -> usize {
            (0..10)
                .filter(|seed| {
                    let mut rng = SimRng::new(100 + seed);
                    simulate_delivery(
                        &map,
                        &apg,
                        &header,
                        src,
                        DeliveryParams {
                            reception_loss: loss,
                            ..DeliveryParams::default()
                        },
                        &mut rng,
                    )
                    .delivered
                })
                .count()
        };
        assert_eq!(delivered_at(0.0), 10);
        // The single-street topology is minimally redundant (1–2 APs
        // per building), so only mild loss is absorbed here; denser
        // conduits tolerate far more (see the experiments).
        assert!(delivered_at(0.1) >= 6, "10% loss should mostly deliver");
        assert!(delivered_at(0.1) >= delivered_at(0.5));
        assert_eq!(delivered_at(1.0), 0, "total loss cannot deliver");
    }

    #[test]
    fn overhead_math() {
        let report = DeliveryReport {
            delivered: true,
            first_delivery: Some(SimTime::ZERO),
            broadcasts: 26,
            receptions: 100,
            duplicates: 60,
            roles: vec![],
        };
        assert_eq!(report.overhead(Some(2)), Some(13.0));
        assert_eq!(report.overhead(Some(0)), Some(26.0));
        assert_eq!(report.overhead(None), None);
        let failed = DeliveryReport {
            delivered: false,
            ..report
        };
        assert_eq!(failed.overhead(Some(2)), None);
    }

    #[test]
    fn overhead_outcome_distinguishes_the_two_none_cases() {
        // The legacy `overhead` Option conflated these; the enum must
        // keep them apart.
        let delivered = DeliveryReport {
            delivered: true,
            first_delivery: Some(SimTime::ZERO),
            broadcasts: 26,
            receptions: 100,
            duplicates: 60,
            roles: vec![],
        };
        assert_eq!(
            delivered.overhead_outcome(None),
            OverheadOutcome::NoBaseline,
            "delivered without a ground-truth path"
        );
        assert_eq!(
            delivered.overhead_outcome(Some(2)),
            OverheadOutcome::Measured(13.0)
        );
        let failed = DeliveryReport {
            delivered: false,
            ..delivered
        };
        assert_eq!(
            failed.overhead_outcome(Some(2)),
            OverheadOutcome::NotDelivered,
            "failure dominates even when a baseline exists"
        );
        assert_eq!(failed.overhead_outcome(None), OverheadOutcome::NotDelivered);
        // Both non-measured variants flatten to None identically.
        assert_eq!(OverheadOutcome::NotDelivered.value(), None);
        assert_eq!(OverheadOutcome::NoBaseline.value(), None);
        assert_eq!(OverheadOutcome::Measured(2.5).value(), Some(2.5));
    }
}
