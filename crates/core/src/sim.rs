//! Event-driven delivery simulation (paper §4).
//!
//! Replays one CityMesh message through a concrete AP placement: the
//! source AP broadcasts, every AP in radio range receives, each
//! receiver runs the real [`ApAgent`] logic (duplicate suppression +
//! conduit membership), and relays fire after a small random MAC
//! jitter. The run records everything the paper's metrics need:
//! whether a destination-building AP ever received the packet
//! (*deliverability*), how many broadcasts happened (the overhead
//! numerator), and the per-AP roles for Figure-7-style renders.

use std::collections::HashMap;

use citymesh_map::CityMap;
use citymesh_net::CityMeshHeader;
use citymesh_simcore::{SimRng, SimTime, Simulation};

use crate::agent::{ApAgent, RebroadcastScope};
use crate::apgraph::ApGraph;
use crate::conduit::reconstruct_conduits;

/// Simulation knobs.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryParams {
    /// Rebroadcast geometry policy.
    pub scope: RebroadcastScope,
    /// Maximum per-relay MAC jitter; each relay waits
    /// `U(min_jitter, max_jitter)` before transmitting.
    pub max_jitter: SimTime,
    /// Minimum per-relay jitter (processing latency floor).
    pub min_jitter: SimTime,
    /// Hard stop: undelivered after this long counts as failure.
    pub horizon: SimTime,
    /// Probability that any individual frame reception is lost to
    /// collisions/fading (0 = the paper's idealized medium). The
    /// broadcast redundancy of conduit relaying is what absorbs this:
    /// a receiver usually hears the same packet from several
    /// neighbors.
    pub reception_loss: f64,
}

impl Default for DeliveryParams {
    fn default() -> Self {
        DeliveryParams {
            scope: RebroadcastScope::Building,
            min_jitter: SimTime::from_micros(500),
            max_jitter: SimTime::from_millis(5),
            horizon: SimTime::from_secs_f64(60.0),
            reception_loss: 0.0,
        }
    }
}

/// What one AP did during the run (for rendering and assertions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApRole {
    /// Never received the packet.
    Silent,
    /// Received at least once but never transmitted (outside conduit,
    /// or TTL exhausted).
    HeardOnly,
    /// Transmitted the packet (source or relay).
    Relayed,
}

/// The outcome of one simulated message.
#[derive(Clone, Debug)]
pub struct DeliveryReport {
    /// Whether an AP in the destination building received the packet.
    pub delivered: bool,
    /// When the first destination-building AP received it.
    pub first_delivery: Option<SimTime>,
    /// Total packet broadcasts (the overhead numerator; includes the
    /// source's initial transmission).
    pub broadcasts: u64,
    /// Total frame receptions across all APs.
    pub receptions: u64,
    /// Receptions dropped as duplicates.
    pub duplicates: u64,
    /// Per-AP role, indexed by AP id.
    pub roles: Vec<ApRole>,
}

impl DeliveryReport {
    /// Transmission overhead versus an ideal unicast path of
    /// `ideal_hops` transmissions (paper §4: "the ratio of the number
    /// of packet broadcasts … to the minimum number of transmissions
    /// necessary"). `None` when the ideal path does not exist or the
    /// message was not delivered.
    pub fn overhead(&self, ideal_hops: Option<u64>) -> Option<f64> {
        match (self.delivered, ideal_hops) {
            (true, Some(h)) if h > 0 => Some(self.broadcasts as f64 / h as f64),
            (true, Some(_)) => Some(self.broadcasts as f64), // same building
            _ => None,
        }
    }

    /// Number of APs that relayed.
    pub fn relay_count(&self) -> usize {
        self.roles.iter().filter(|r| **r == ApRole::Relayed).count()
    }
}

/// Simulates one message from `src_ap` with routing state `header`.
///
/// `rng` drives MAC jitter only; topology comes fixed from `apg`.
pub fn simulate_delivery(
    map: &CityMap,
    apg: &ApGraph,
    header: &CityMeshHeader,
    src_ap: u32,
    params: DeliveryParams,
    rng: &mut SimRng,
) -> DeliveryReport {
    assert!((src_ap as usize) < apg.len(), "source AP out of range");
    let conduits = reconstruct_conduits(map, &header.waypoints, header.conduit_width_m());
    let dst_building = header.destination();

    let mut agents: HashMap<u32, ApAgent> = HashMap::new();
    let mut roles = vec![ApRole::Silent; apg.len()];
    let mut report = DeliveryReport {
        delivered: false,
        first_delivery: None,
        broadcasts: 0,
        receptions: 0,
        duplicates: 0,
        roles: Vec::new(),
    };

    /// The only event: an AP transmits the packet.
    struct Tx(u32);

    let mut sim: Simulation<Tx> = Simulation::new().with_horizon(params.horizon);

    // The source transmits unconditionally at t = 0 and will treat its
    // own message as seen.
    agents
        .entry(src_ap)
        .or_insert_with(|| {
            ApAgent::new(apg.position(src_ap), apg.building_of(src_ap), params.scope)
        })
        .seen
        .check_and_insert(header.msg_id);
    roles[src_ap as usize] = ApRole::Relayed;
    sim.schedule_at(SimTime::ZERO, Tx(src_ap));

    // If the source already sits in the destination building, the
    // local postbox is reached immediately.
    if apg.building_of(src_ap) == dst_building {
        report.delivered = true;
        report.first_delivery = Some(SimTime::ZERO);
    }

    let jitter_span = params
        .max_jitter
        .saturating_since(params.min_jitter)
        .as_nanos()
        .max(1);

    let mut pending: Vec<(SimTime, u32)> = Vec::new();
    sim.run(|sim, Tx(ap)| {
        report.broadcasts += 1;
        let now = sim.now();
        pending.clear();
        let tx_pos = apg.position(ap);
        apg.for_each_in_range(tx_pos, |rx, _| {
            if rx == ap {
                return; // no self-reception
            }
            if params.reception_loss > 0.0 && rng.chance(params.reception_loss) {
                return; // frame lost to collision/fading
            }
            report.receptions += 1;
            let agent = agents.entry(rx).or_insert_with(|| {
                ApAgent::new(apg.position(rx), apg.building_of(rx), params.scope)
            });
            let action = agent.handle_with_conduits(header, map, &conduits);
            if action == crate::agent::Action::IGNORE && roles[rx as usize] != ApRole::Silent {
                report.duplicates += 1;
                return;
            }
            if roles[rx as usize] == ApRole::Silent {
                roles[rx as usize] = ApRole::HeardOnly;
            }
            if action.deliver && report.first_delivery.is_none() {
                report.delivered = true;
                report.first_delivery = Some(now);
            }
            if action.rebroadcast {
                roles[rx as usize] = ApRole::Relayed;
                let delay =
                    SimTime::from_nanos(params.min_jitter.as_nanos() + rng.below(jitter_span));
                pending.push((now + delay, rx));
            }
        });
        for (at, rx) in pending.drain(..) {
            sim.schedule_at(at, Tx(rx));
        }
    });

    report.roles = roles;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_aps, postbox_ap};
    use crate::{BuildingGraph, BuildingGraphParams};
    use citymesh_geo::{Point, Polygon, Rect};

    fn square_at(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::rect(Rect::from_corners(
            Point::new(x, y),
            Point::new(x + side, y + side),
        ))
    }

    /// A straight street of 10 buildings, 30 m pitch; range 50 m.
    fn street() -> (CityMap, ApGraph, BuildingGraph, Vec<crate::Ap>) {
        let map = CityMap::new(
            "street",
            (0..10)
                .map(|i| square_at(i as f64 * 30.0, 0.0, 12.0))
                .collect(),
            vec![],
        );
        let mut rng = SimRng::new(1);
        let aps = place_aps(&map, 100.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        (map, apg, bg, aps)
    }

    fn route_header(bg: &BuildingGraph, src: u32, dst: u32) -> CityMeshHeader {
        let route = crate::plan_route(bg, src, dst).unwrap();
        let compressed = crate::compress_route(bg, &route, 50.0);
        CityMeshHeader::new(777, 50.0, compressed.waypoints)
    }

    #[test]
    fn straight_street_delivers() {
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let mut rng = SimRng::new(2);
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(report.delivered);
        assert!(report.first_delivery.is_some());
        assert!(report.broadcasts >= 5, "a 270 m street needs several hops");
        assert!(report.receptions > report.broadcasts);
        // Every relay transmitted exactly once.
        assert_eq!(report.relay_count() as u64, report.broadcasts);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            simulate_delivery(
                &map,
                &apg,
                &header,
                src,
                DeliveryParams::default(),
                &mut rng,
            )
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.broadcasts, b.broadcasts);
        assert_eq!(a.receptions, b.receptions);
        assert_eq!(a.first_delivery, b.first_delivery);
        assert_eq!(a.roles, b.roles);
    }

    #[test]
    fn unreachable_destination_fails_cleanly() {
        // Two street islands 500 m apart.
        let mut footprints: Vec<Polygon> = (0..3)
            .map(|i| square_at(i as f64 * 30.0, 0.0, 12.0))
            .collect();
        footprints.extend((0..3).map(|i| square_at(700.0 + i as f64 * 30.0, 0.0, 12.0)));
        let map = CityMap::new("islands", footprints, vec![]);
        let mut rng = SimRng::new(3);
        let aps = place_aps(&map, 100.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let src_building = map.nearest_building(Point::new(0.0, 0.0)).unwrap().id;
        let dst_building = map.nearest_building(Point::new(760.0, 0.0)).unwrap().id;
        // Force a header straight across the gap (a sender with a map
        // would not even try; this exercises network behaviour).
        let header = CityMeshHeader::new(1, 50.0, vec![src_building, dst_building]);
        let src = postbox_ap(&aps, &map, src_building).unwrap();
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(!report.delivered);
        assert!(report.first_delivery.is_none());
        assert!(report.overhead(None).is_none());
        // Only the source island ever transmits.
        assert!(report.broadcasts <= aps.len() as u64 / 2 + 1);
    }

    #[test]
    fn conduit_confines_the_flood() {
        // A wide field of buildings; route along the bottom edge. APs
        // far above the conduit must stay silent.
        let mut footprints = Vec::new();
        for y in 0..6 {
            for x in 0..8 {
                footprints.push(square_at(x as f64 * 30.0, y as f64 * 30.0, 12.0));
            }
        }
        let map = CityMap::new("field", footprints, vec![]);
        let mut rng = SimRng::new(4);
        let aps = place_aps(&map, 100.0, &mut rng);
        let apg = ApGraph::build(&aps, 50.0);
        let bg = BuildingGraph::build(
            &map,
            BuildingGraphParams {
                max_gap_m: 25.0,
                weight_exponent: 3.0,
            },
        );
        let src = map.nearest_building(Point::new(6.0, 6.0)).unwrap().id;
        let dst = map.nearest_building(Point::new(216.0, 6.0)).unwrap().id;
        let header = route_header(&bg, src, dst);
        let src_ap = postbox_ap(&aps, &map, src).unwrap();
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src_ap,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(report.delivered);
        // APs in the top rows (y > 120 m: > 2 building rows above the
        // conduit) never relay.
        for ap in &aps {
            if ap.pos.y > 120.0 {
                assert_ne!(
                    report.roles[ap.id as usize],
                    ApRole::Relayed,
                    "AP {} at {:?} should be outside the conduit",
                    ap.id,
                    ap.pos
                );
            }
        }
        // But the flood did not cover everything either.
        assert!(report.relay_count() < aps.len());
    }

    #[test]
    fn ap_scope_relays_no_more_than_building_scope() {
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let run = |scope| {
            let mut rng = SimRng::new(6);
            simulate_delivery(
                &map,
                &apg,
                &header,
                src,
                DeliveryParams {
                    scope,
                    ..DeliveryParams::default()
                },
                &mut rng,
            )
        };
        let by_building = run(RebroadcastScope::Building);
        let by_pos = run(RebroadcastScope::ApPosition);
        assert!(by_building.delivered);
        assert!(by_pos.broadcasts <= by_building.broadcasts);
    }

    #[test]
    fn same_building_delivery_is_instant() {
        let (map, apg, _, aps) = street();
        let header = CityMeshHeader::new(9, 50.0, vec![3]);
        let src = postbox_ap(&aps, &map, 3).unwrap();
        let mut rng = SimRng::new(7);
        let report = simulate_delivery(
            &map,
            &apg,
            &header,
            src,
            DeliveryParams::default(),
            &mut rng,
        );
        assert!(report.delivered);
        assert_eq!(report.first_delivery, Some(SimTime::ZERO));
    }

    #[test]
    fn broadcast_redundancy_absorbs_moderate_loss() {
        // The conduit's multi-relay redundancy should keep delivering
        // under substantial per-frame loss, and total loss must fail.
        let (map, apg, bg, aps) = street();
        let header = route_header(&bg, 0, 9);
        let src = postbox_ap(&aps, &map, 0).unwrap();
        let delivered_at = |loss: f64| -> usize {
            (0..10)
                .filter(|seed| {
                    let mut rng = SimRng::new(100 + seed);
                    simulate_delivery(
                        &map,
                        &apg,
                        &header,
                        src,
                        DeliveryParams {
                            reception_loss: loss,
                            ..DeliveryParams::default()
                        },
                        &mut rng,
                    )
                    .delivered
                })
                .count()
        };
        assert_eq!(delivered_at(0.0), 10);
        // The single-street topology is minimally redundant (1–2 APs
        // per building), so only mild loss is absorbed here; denser
        // conduits tolerate far more (see the experiments).
        assert!(delivered_at(0.1) >= 6, "10% loss should mostly deliver");
        assert!(delivered_at(0.1) >= delivered_at(0.5));
        assert_eq!(delivered_at(1.0), 0, "total loss cannot deliver");
    }

    #[test]
    fn overhead_math() {
        let report = DeliveryReport {
            delivered: true,
            first_delivery: Some(SimTime::ZERO),
            broadcasts: 26,
            receptions: 100,
            duplicates: 60,
            roles: vec![],
        };
        assert_eq!(report.overhead(Some(2)), Some(13.0));
        assert_eq!(report.overhead(Some(0)), Some(26.0));
        assert_eq!(report.overhead(None), None);
        let failed = DeliveryReport {
            delivered: false,
            ..report
        };
        assert_eq!(failed.overhead(Some(2)), None);
    }
}
