//! AP placement inside building footprints (paper §4).
//!
//! "Randomly places APs in a 2D plane, inside building footprints at a
//! configurable AP density." Each building receives
//! `area / m2_per_ap` APs in expectation (fractional remainders are
//! resolved by a Bernoulli draw, and every building gets at least one
//! AP — a building with zero APs could never host a postbox).

use citymesh_geo::Point;
use citymesh_map::CityMap;
use citymesh_simcore::SimRng;

/// A placed access point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ap {
    /// AP index (position in the placement vector).
    pub id: u32,
    /// Location, meters.
    pub pos: Point,
    /// The building containing this AP.
    pub building: u32,
}

/// Places APs in every building of `map` at the given density
/// (`m2_per_ap` square meters of footprint per AP; the paper's default
/// is 200).
///
/// Positions are uniform within each footprint via rejection sampling
/// in the bounding box. Deterministic in `(map, m2_per_ap, rng state)`.
///
/// # Panics
/// Panics on a non-positive density.
pub fn place_aps(map: &CityMap, m2_per_ap: f64, rng: &mut SimRng) -> Vec<Ap> {
    assert!(m2_per_ap > 0.0, "m2_per_ap must be positive");
    let mut aps = Vec::new();
    for b in map.buildings() {
        let expected = b.area / m2_per_ap;
        let mut n = expected.floor() as usize;
        if rng.chance(expected - expected.floor()) {
            n += 1;
        }
        n = n.max(1);
        let bbox = b.footprint.bbox();
        for _ in 0..n {
            // Rejection sampling: footprints are convex-ish lot
            // rectangles, so acceptance is high; cap attempts and fall
            // back to the centroid for pathological shapes.
            let mut pos = b.centroid;
            for _ in 0..64 {
                let candidate = Point::new(
                    rng.uniform_range(bbox.min.x, bbox.max.x),
                    rng.uniform_range(bbox.min.y, bbox.max.y),
                );
                if b.footprint.contains(candidate) {
                    pos = candidate;
                    break;
                }
            }
            aps.push(Ap {
                id: aps.len() as u32,
                pos,
                building: b.id,
            });
        }
    }
    aps
}

/// Selects one AP per building to act as the postbox AP: the one
/// closest to the footprint centroid, matching the intuition that a
/// postbox should be the building's most "central" AP.
pub fn postbox_ap(aps: &[Ap], map: &CityMap, building: u32) -> Option<u32> {
    let b = map.building(building)?;
    aps.iter()
        .filter(|ap| ap.building == building)
        .min_by(|x, y| {
            let dx = x.pos.dist2(b.centroid);
            let dy = y.pos.dist2(b.centroid);
            dx.partial_cmp(&dy).expect("finite distances")
        })
        .map(|ap| ap.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citymesh_geo::{Polygon, Rect};
    use citymesh_map::CityArchetype;

    fn big_square_map(side: f64) -> CityMap {
        CityMap::new(
            "one",
            vec![Polygon::rect(Rect::from_corners(
                Point::new(0.0, 0.0),
                Point::new(side, side),
            ))],
            vec![],
        )
    }

    #[test]
    fn density_controls_expected_count() {
        let map = big_square_map(200.0); // 40 000 m²
        let mut rng = SimRng::new(5);
        let aps = place_aps(&map, 200.0, &mut rng);
        // Expectation 200 APs; Bernoulli slack is tiny here.
        assert_eq!(aps.len(), 200);
        let mut rng = SimRng::new(5);
        let sparse = place_aps(&map, 800.0, &mut rng);
        assert_eq!(sparse.len(), 50);
    }

    #[test]
    fn all_aps_inside_their_footprint() {
        let map = CityArchetype::SurveyDowntown.generate(3);
        let mut rng = SimRng::new(9);
        let aps = place_aps(&map, 200.0, &mut rng);
        assert!(!aps.is_empty());
        for ap in &aps {
            let b = map.building(ap.building).unwrap();
            assert!(
                b.footprint.contains(ap.pos),
                "AP {} at {:?} escaped building {}",
                ap.id,
                ap.pos,
                ap.building
            );
            assert_eq!(aps[ap.id as usize].id, ap.id, "ids must index the vector");
        }
    }

    #[test]
    fn every_building_gets_at_least_one_ap() {
        let map = CityArchetype::SurveyResidential.generate(4);
        let mut rng = SimRng::new(4);
        // Density so sparse that expectation per building is < 1.
        let aps = place_aps(&map, 1e6, &mut rng);
        let mut seen = vec![false; map.len()];
        for ap in &aps {
            seen[ap.building as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
        assert_eq!(aps.len(), map.len());
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let map = CityArchetype::SurveyDowntown.generate(3);
        let a = place_aps(&map, 200.0, &mut SimRng::new(7));
        let b = place_aps(&map, 200.0, &mut SimRng::new(7));
        assert_eq!(a, b);
        let c = place_aps(&map, 200.0, &mut SimRng::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn positions_spread_through_the_footprint() {
        let map = big_square_map(100.0);
        let aps = place_aps(&map, 100.0, &mut SimRng::new(11));
        // Mean position ≈ centroid for uniform placement.
        let n = aps.len() as f64;
        let mx: f64 = aps.iter().map(|a| a.pos.x).sum::<f64>() / n;
        let my: f64 = aps.iter().map(|a| a.pos.y).sum::<f64>() / n;
        assert!((mx - 50.0).abs() < 10.0, "mean x {mx}");
        assert!((my - 50.0).abs() < 10.0, "mean y {my}");
    }

    #[test]
    fn postbox_ap_is_most_central() {
        let map = big_square_map(100.0);
        let aps = place_aps(&map, 500.0, &mut SimRng::new(2));
        let pb = postbox_ap(&aps, &map, 0).unwrap();
        let centroid = map.building(0).unwrap().centroid;
        let pb_dist = aps[pb as usize].pos.dist(centroid);
        for ap in &aps {
            assert!(ap.pos.dist(centroid) >= pb_dist - 1e-9);
        }
        assert!(postbox_ap(&aps, &map, 99).is_none());
    }

    #[test]
    #[should_panic(expected = "m2_per_ap")]
    fn zero_density_panics() {
        let map = big_square_map(10.0);
        place_aps(&map, 0.0, &mut SimRng::new(1));
    }
}
