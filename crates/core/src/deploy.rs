//! The deployment decision variable: `k` designated relay/postbox
//! sites under a budget.
//!
//! The paper's fallback network lives or dies on where its fixed
//! infrastructure sits. A [`Deployment`] names the buildings whose APs
//! are *hardened* — backup power, protected mounting — so they survive
//! blackout and battery scenarios, and whose postboxes hold mail for
//! recipients whose own buildings have gone dark. It is a pure value:
//! a sorted set of building ids plus the budget it was drawn under.
//! [`crate::CityExperiment::set_deployment`] plumbs it into a prepared
//! world (forcing the sites' APs [`crate::ApHealth::Up`] and building
//! the nearest-site fallback table); the `citymesh-place` optimizers
//! search over deployments by relocating one site at a time.

/// A rejected deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeploymentError {
    /// More distinct sites than the budget allows.
    OverBudget {
        /// Distinct sites requested.
        sites: usize,
        /// The site budget.
        budget: usize,
    },
    /// A budget of zero can never designate a site.
    ZeroBudget,
}

impl std::fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeploymentError::OverBudget { sites, budget } => {
                write!(f, "deployment has {sites} sites but a budget of {budget}")
            }
            DeploymentError::ZeroBudget => write!(f, "deployment budget must be positive"),
        }
    }
}

impl std::error::Error for DeploymentError {}

/// `k` designated relay/postbox sites (building ids) under a budget.
///
/// Sites are stored sorted and deduplicated, so two deployments
/// naming the same buildings compare equal and hash to the same
/// [`Deployment::digest`] regardless of construction order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Deployment {
    /// Sorted, deduplicated designated building ids.
    sites: Vec<u32>,
    /// The site budget the deployment was drawn under (`sites.len()`
    /// may be smaller; it may never be larger).
    budget: usize,
}

impl Deployment {
    /// A deployment of `sites` (any order, duplicates collapsed) under
    /// `budget`.
    pub fn new(mut sites: Vec<u32>, budget: usize) -> Result<Self, DeploymentError> {
        if budget == 0 {
            return Err(DeploymentError::ZeroBudget);
        }
        sites.sort_unstable();
        sites.dedup();
        if sites.len() > budget {
            return Err(DeploymentError::OverBudget {
                sites: sites.len(),
                budget,
            });
        }
        Ok(Deployment { sites, budget })
    }

    /// The designated building ids, sorted ascending.
    pub fn sites(&self) -> &[u32] {
        &self.sites
    }

    /// The site budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Whether `building` is a designated site (binary search).
    pub fn contains(&self, building: u32) -> bool {
        self.sites.binary_search(&building).is_ok()
    }

    /// The deployment with the site at `slot` (index into the sorted
    /// site list) relocated to `to` — the annealer's one proposal
    /// move. `None` when `to` is already a site (the move would shrink
    /// the deployment) or `slot` is out of range.
    pub fn relocated(&self, slot: usize, to: u32) -> Option<Deployment> {
        if slot >= self.sites.len() || self.contains(to) {
            return None;
        }
        let mut sites = self.sites.clone();
        sites[slot] = to;
        sites.sort_unstable();
        Some(Deployment {
            sites,
            budget: self.budget,
        })
    }

    /// FNV-1a over the budget and the sorted sites — the identity the
    /// placement score digest chains over.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.budget as u64);
        mix(self.sites.len() as u64);
        for &s in &self.sites {
            mix(u64::from(s));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_are_sorted_and_deduplicated() {
        let d = Deployment::new(vec![9, 3, 3, 7], 4).unwrap();
        assert_eq!(d.sites(), &[3, 7, 9]);
        assert_eq!(d.budget(), 4);
        assert!(d.contains(7));
        assert!(!d.contains(4));
    }

    #[test]
    fn budget_is_enforced() {
        assert_eq!(
            Deployment::new(vec![1, 2, 3], 2),
            Err(DeploymentError::OverBudget {
                sites: 3,
                budget: 2
            })
        );
        assert_eq!(Deployment::new(vec![], 0), Err(DeploymentError::ZeroBudget));
        // Duplicates collapse before the budget check.
        assert!(Deployment::new(vec![1, 1, 1], 1).is_ok());
    }

    #[test]
    fn relocation_is_a_set_move() {
        let d = Deployment::new(vec![2, 5, 8], 3).unwrap();
        let m = d.relocated(1, 11).unwrap();
        assert_eq!(m.sites(), &[2, 8, 11]);
        assert_eq!(m.budget(), 3);
        // Moving onto an existing site or out of range is rejected.
        assert_eq!(d.relocated(0, 8), None);
        assert_eq!(d.relocated(3, 99), None);
    }

    #[test]
    fn digest_is_order_independent_and_site_sensitive() {
        let a = Deployment::new(vec![4, 1, 9], 3).unwrap();
        let b = Deployment::new(vec![9, 4, 1], 3).unwrap();
        let c = Deployment::new(vec![9, 4, 2], 3).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        // The budget is part of the identity.
        let wider = Deployment::new(vec![4, 1, 9], 5).unwrap();
        assert_ne!(a.digest(), wider.digest());
    }
}
