//! Per-pair session keys: static-static X25519 → HKDF, amortized.
//!
//! [`identity::SealedMessage`](crate::identity::SealedMessage) runs a
//! *fresh* ephemeral ECDH per message — right for postbox mail that
//! must be readable with nothing but the recipient's long-term key,
//! wrong for a hot path that seals thousands of messages between the
//! same two buildings. A [`SessionKey`] is the amortized alternative:
//! one static-static Diffie–Hellman and one HKDF per *pair*, then
//! nothing but symmetric work (ChaCha20-Poly1305 sealing, truncated
//! HMAC-SHA256 header tags) per message. The derivation is
//! **canonical** — both endpoints sort the two public keys into the
//! HKDF salt, so `(a, b)` and `(b, a)` produce the same key and a
//! shared cache needs only one entry per unordered pair.
//!
//! Nonces are the caller's responsibility: [`SessionKey::seal_into`]
//! builds the 96-bit nonce from the message id, so ids must be unique
//! per pair per key epoch. CityMesh message ids are drawn from
//! per-flow seeded sub-streams that make them unique across the whole
//! run, which over-satisfies that contract.

use crate::aead::{self, AeadError};
use crate::chacha20::{KEY_LEN, NONCE_LEN};
use crate::hkdf;
use crate::hmac::hmac_sha256;
use crate::identity::Keypair;

/// Length of the truncated HMAC-SHA256 header tag, bytes.
pub const HEADER_TAG_LEN: usize = 16;

/// Domain-separation label for session-key HKDF expansion. Distinct
/// from the sealed-postbox label so a session key can never collide
/// with a [`SealedMessage`](crate::identity::SealedMessage) key even
/// if the same Diffie–Hellman output somehow appeared in both flows.
const SESSION_INFO: &[u8] = b"citymesh-v1 session";

/// The symmetric material shared by one unordered pair of nodes: an
/// AEAD key for payloads and an independent MAC key for headers.
///
/// Derive once per pair (expensive: one X25519 scalar multiplication
/// plus an HKDF), cache, and reuse — every per-message operation on
/// this type is allocation-free given reused output buffers.
#[derive(Clone)]
pub struct SessionKey {
    aead_key: [u8; KEY_LEN],
    header_key: [u8; 32],
}

impl std::fmt::Debug for SessionKey {
    /// Redacted: key material never reaches logs or panic messages.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SessionKey(..)")
    }
}

impl SessionKey {
    /// Derives the pair key from our keypair and their public key.
    ///
    /// Both directions derive the same key: the HKDF salt is the two
    /// public keys in lexicographic order, and X25519 guarantees
    /// `DH(a, B) == DH(b, A)`. Returns `None` when the shared secret
    /// is the all-zero point (a contributory-behavior check — the
    /// peer's public key was a low-order point).
    pub fn derive(ours: &Keypair, their_public: &[u8; 32]) -> Option<SessionKey> {
        let shared = ours.diffie_hellman(their_public)?;
        let mut salt = [0u8; 64];
        let (lo, hi) = if ours.public <= *their_public {
            (&ours.public, their_public)
        } else {
            (their_public, &ours.public)
        };
        salt[..32].copy_from_slice(lo);
        salt[32..].copy_from_slice(hi);
        let mut okm = [0u8; 64];
        hkdf::derive(&salt, &shared, SESSION_INFO, &mut okm);
        let mut aead_key = [0u8; KEY_LEN];
        aead_key.copy_from_slice(&okm[..KEY_LEN]);
        let mut header_key = [0u8; 32];
        header_key.copy_from_slice(&okm[KEY_LEN..]);
        Some(SessionKey {
            aead_key,
            header_key,
        })
    }

    /// Seals `plaintext` under this session key into `out`
    /// (`ciphertext ‖ tag`), binding `aad` and deriving the nonce from
    /// `msg_id`. Allocation-free once `out`'s capacity is warm.
    pub fn seal_into(&self, msg_id: u64, aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
        aead::seal_into(&self.aead_key, &nonce_for(msg_id), aad, plaintext, out);
    }

    /// Opens a message sealed by [`SessionKey::seal_into`] with the
    /// same `msg_id` and `aad`. The tag is verified in constant time
    /// before any plaintext is produced; on failure `out` stays empty.
    pub fn open_into(
        &self,
        msg_id: u64,
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), AeadError> {
        aead::open_into(&self.aead_key, &nonce_for(msg_id), aad, sealed, out)
    }

    /// Authenticates routing-header bytes: HMAC-SHA256 under the
    /// header key, truncated to [`HEADER_TAG_LEN`]. Headers are
    /// mutated hop-by-hop metadata the AEAD cannot cover, so they get
    /// their own MAC instead of riding in the AAD.
    pub fn header_tag(&self, header: &[u8]) -> [u8; HEADER_TAG_LEN] {
        let full = hmac_sha256(&self.header_key, header);
        let mut tag = [0u8; HEADER_TAG_LEN];
        tag.copy_from_slice(&full[..HEADER_TAG_LEN]);
        tag
    }

    /// Verifies a header tag in constant time.
    pub fn verify_header(&self, header: &[u8], tag: &[u8; HEADER_TAG_LEN]) -> bool {
        let full = hmac_sha256(&self.header_key, header);
        crate::ct_eq(&full[..HEADER_TAG_LEN], tag)
    }
}

/// The 96-bit per-message nonce: message id little-endian in the low
/// eight bytes, a fixed version marker in the rest. Safe exactly
/// because message ids are unique per pair per key epoch.
fn nonce_for(msg_id: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..8].copy_from_slice(&msg_id.to_le_bytes());
    nonce[8..].copy_from_slice(b"CMs1");
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(seed: u8) -> Keypair {
        Keypair::from_entropy([seed; 32])
    }

    #[test]
    fn both_directions_derive_the_same_key() {
        let a = pair(1);
        let b = pair(2);
        let ab = SessionKey::derive(&a, &b.public).unwrap();
        let ba = SessionKey::derive(&b, &a.public).unwrap();
        // Equal keys ⇒ each side opens what the other seals.
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        ab.seal_into(7, b"hdr", b"hello from a", &mut sealed);
        ba.open_into(7, b"hdr", &sealed, &mut opened).unwrap();
        assert_eq!(opened, b"hello from a");
        assert_eq!(ab.header_tag(b"route"), ba.header_tag(b"route"));
    }

    #[test]
    fn distinct_pairs_get_distinct_keys() {
        let a = pair(1);
        let b = pair(2);
        let c = pair(3);
        let ab = SessionKey::derive(&a, &b.public).unwrap();
        let ac = SessionKey::derive(&a, &c.public).unwrap();
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        ab.seal_into(1, b"", b"secret", &mut sealed);
        assert!(ac.open_into(1, b"", &sealed, &mut opened).is_err());
    }

    #[test]
    fn wrong_msg_id_or_aad_fails_open() {
        let a = pair(4);
        let b = pair(5);
        let k = SessionKey::derive(&a, &b.public).unwrap();
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        k.seal_into(42, b"aad", b"payload", &mut sealed);
        assert!(k.open_into(43, b"aad", &sealed, &mut opened).is_err());
        assert!(k.open_into(42, b"AAD", &sealed, &mut opened).is_err());
        k.open_into(42, b"aad", &sealed, &mut opened).unwrap();
        assert_eq!(opened, b"payload");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = SessionKey::derive(&pair(6), &pair(7).public).unwrap();
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        k.seal_into(9, b"h", b"message body", &mut sealed);
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x80;
            assert!(k.open_into(9, b"h", &bad, &mut opened).is_err(), "byte {i}");
        }
    }

    #[test]
    fn header_tags_verify_and_reject() {
        let k = SessionKey::derive(&pair(8), &pair(9).public).unwrap();
        let tag = k.header_tag(b"src=1 dst=2 route=abc");
        assert!(k.verify_header(b"src=1 dst=2 route=abc", &tag));
        assert!(!k.verify_header(b"src=1 dst=9 route=abc", &tag));
        let mut flipped = tag;
        flipped[0] ^= 1;
        assert!(!k.verify_header(b"src=1 dst=2 route=abc", &flipped));
    }

    #[test]
    fn debug_is_redacted() {
        let k = SessionKey::derive(&pair(10), &pair(11).public).unwrap();
        assert_eq!(format!("{k:?}"), "SessionKey(..)");
    }
}
