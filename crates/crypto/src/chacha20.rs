//! ChaCha20 stream cipher (RFC 8439 §2.3–2.4).

/// Key length, bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length, bytes (the 96-bit IETF variant).
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produces the 64-byte keystream block for `(key, nonce, counter)`.
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream into `data` in place, starting at block
/// `counter`. Encryption and decryption are the same operation.
///
/// # Panics
/// Panics if the keystream would exhaust the 32-bit block counter
/// (≈ 256 GiB under one nonce) — reusing counter space would be
/// catastrophic, so it is a hard error.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    let blocks_needed = data.len().div_ceil(64) as u64;
    assert!(
        (counter as u64) + blocks_needed <= u32::MAX as u64 + 1,
        "ChaCha20 block counter would overflow"
    );
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, nonce, counter.wrapping_add(i as u32));
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = unhex("000000090000004a00000000").try_into().unwrap();
        let out = block(&key, &nonce, 1);
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(out.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = unhex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_stream(&key, &nonce, 1, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_is_involutive() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..300u16).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        xor_stream(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_different_streams() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_stream(&key, &[0u8; 12], 0, &mut a);
        xor_stream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_block_lengths() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        // A 100-byte stream must equal the prefix of a 200-byte stream.
        let mut short = vec![0u8; 100];
        let mut long = vec![0u8; 200];
        xor_stream(&key, &nonce, 0, &mut short);
        xor_stream(&key, &nonce, 0, &mut long);
        assert_eq!(short, long[..100]);
    }

    #[test]
    #[should_panic(expected = "counter")]
    fn counter_overflow_panics() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let mut data = vec![0u8; 129]; // 3 blocks from u32::MAX - 1
        xor_stream(&key, &nonce, u32::MAX - 1, &mut data);
    }
}
