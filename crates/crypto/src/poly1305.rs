//! Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! 26-bit limb implementation (the "donna-32" shape): five limbs with
//! `u64` intermediate products, so the whole computation stays in safe
//! integer arithmetic with no secret-dependent branches.

/// Key length, bytes (`r ‖ s`).
pub const KEY_LEN: usize = 32;
/// Tag length, bytes.
pub const TAG_LEN: usize = 16;

const MASK26: u32 = 0x3ff_ffff;

/// Incremental Poly1305 state.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates an authenticator from a 32-byte one-time key.
    ///
    /// The key **must never be reused** across messages; the AEAD
    /// construction derives it per-nonce from ChaCha20 block 0.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let le32 = |i: usize| u32::from_le_bytes(key[i..i + 4].try_into().expect("4 bytes"));
        // Clamp r per the RFC while splitting into 26-bit limbs.
        let r = [
            le32(0) & 0x3ff_ffff,
            (le32(3) >> 2) & 0x3ff_ff03,
            (le32(6) >> 4) & 0x3ff_c0ff,
            (le32(9) >> 6) & 0x3f0_3fff,
            (le32(12) >> 8) & 0x00f_ffff,
        ];
        let s = [le32(16), le32(20), le32(24), le32(28)];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            self.block(block.try_into().expect("16 bytes"), false);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block: append 0x01 then zeros, and
            // process without the implicit high bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, true);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        // Full carry propagation.
        let mut c;
        c = h1 >> 26;
        h1 &= MASK26;
        h2 += c;
        c = h2 >> 26;
        h2 &= MASK26;
        h3 += c;
        c = h3 >> 26;
        h3 &= MASK26;
        h4 += c;
        c = h4 >> 26;
        h4 &= MASK26;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= MASK26;
        h1 += c;

        // Compute h + (-p) to test h ≥ p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= MASK26;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= MASK26;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= MASK26;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= MASK26;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // mask = all-ones when h < p (select h), zero when h ≥ p (select g).
        let mask = (g4 >> 31).wrapping_sub(1);
        let nm = !mask;
        h0 = (h0 & nm) | (g0 & mask);
        h1 = (h1 & nm) | (g1 & mask);
        h2 = (h2 & nm) | (g2 & mask);
        h3 = (h3 & nm) | (g3 & mask);
        h4 = (h4 & nm) | (g4 & mask);

        // Repack into 32-bit words and add s mod 2^128.
        let f0 = (h0 | (h1 << 26)) as u64;
        let f1 = ((h1 >> 6) | (h2 << 20)) as u64;
        let f2 = ((h2 >> 12) | (h3 << 14)) as u64;
        let f3 = ((h3 >> 18) | (h4 << 8)) as u64;

        let mut acc = f0 + self.s[0] as u64;
        let w0 = acc as u32;
        acc = f1 + self.s[1] as u64 + (acc >> 32);
        let w1 = acc as u32;
        acc = f2 + self.s[2] as u64 + (acc >> 32);
        let w2 = acc as u32;
        acc = f3 + self.s[3] as u64 + (acc >> 32);
        let w3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&w0.to_le_bytes());
        tag[4..8].copy_from_slice(&w1.to_le_bytes());
        tag[8..12].copy_from_slice(&w2.to_le_bytes());
        tag[12..16].copy_from_slice(&w3.to_le_bytes());
        tag
    }

    fn block(&mut self, block: &[u8; 16], is_final_partial: bool) {
        let le32 = |i: usize| u32::from_le_bytes(block[i..i + 4].try_into().expect("4 bytes"));
        let hibit: u32 = if is_final_partial { 0 } else { 1 << 24 };

        let h0 = (self.h[0] + (le32(0) & MASK26)) as u64;
        let h1 = (self.h[1] + ((le32(3) >> 2) & MASK26)) as u64;
        let h2 = (self.h[2] + ((le32(6) >> 4) & MASK26)) as u64;
        let h3 = (self.h[3] + ((le32(9) >> 6) & MASK26)) as u64;
        let h4 = (self.h[4] + ((le32(12) >> 8) | hibit)) as u64;

        let [r0, r1, r2, r3, r4] = self.r.map(|x| x as u64);
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry reduction.
        let mut c = d0 >> 26;
        let h0 = (d0 & MASK26 as u64) as u32;
        let d1 = d1 + c;
        c = d1 >> 26;
        let h1 = (d1 & MASK26 as u64) as u32;
        let d2 = d2 + c;
        c = d2 >> 26;
        let h2 = (d2 & MASK26 as u64) as u32;
        let d3 = d3 + c;
        c = d3 >> 26;
        let h3 = (d3 & MASK26 as u64) as u32;
        let d4 = d4 + c;
        c = d4 >> 26;
        let h4 = (d4 & MASK26 as u64) as u32;
        let h0 = h0 + (c * 5) as u32;
        let c = h0 >> 26;
        let h0 = h0 & MASK26;
        let h1 = h1 + c;

        self.h = [h0, h1, h2, h3, h4];
    }
}

/// One-shot Poly1305 tag.
pub fn poly1305(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(message);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] =
            unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .try_into()
                .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    #[test]
    fn rfc8439_appendix_a3_vector_2() {
        // A.3 #2: r = 0, s = arbitrary, any message → tag = s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = poly1305(&key, msg);
        assert_eq!(tag.to_vec(), unhex("36e5f6b5c5e06070f0efca96227a863e"));
    }

    #[test]
    fn rfc8439_appendix_a3_vector_3() {
        // A.3 #3: s = 0.
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = poly1305(&key, msg);
        assert_eq!(tag.to_vec(), unhex("f3477e7cd95417af89a6b8794c310cf0"));
    }

    #[test]
    fn edge_case_h_near_p() {
        // RFC 8439 A.3 #5: message = 0xFF…FF forces h ≥ p in the final
        // comparison; r = 2, s = 0.
        let mut key = [0u8; 32];
        key[0] = 0x02;
        let msg = [0xFFu8; 16];
        let tag = poly1305(&key, &msg);
        assert_eq!(tag.to_vec(), unhex("03000000000000000000000000000000"));
    }

    #[test]
    fn incremental_equals_one_shot() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let msg: Vec<u8> = (0..259u16).map(|i| (i * 3 % 256) as u8).collect();
        for chunk in [1, 5, 15, 16, 17, 100] {
            let mut p = Poly1305::new(&key);
            for c in msg.chunks(chunk) {
                p.update(c);
            }
            assert_eq!(p.finalize(), poly1305(&key, &msg), "chunk={chunk}");
        }
    }

    #[test]
    fn empty_message() {
        let key: [u8; 32] = (1u8..33).collect::<Vec<_>>().try_into().unwrap();
        // Tag of empty message is just s (h stays 0).
        let tag = poly1305(&key, b"");
        assert_eq!(&tag, &key[16..32]);
    }

    #[test]
    fn tag_depends_on_every_bit() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let msg = b"postbox message integrity".to_vec();
        let reference = poly1305(&key, &msg);
        for i in 0..msg.len() {
            let mut m = msg.clone();
            m[i] ^= 0x80;
            assert_ne!(poly1305(&key, &m), reference, "byte {i}");
        }
    }
}
