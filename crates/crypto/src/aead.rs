//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::poly1305::{Poly1305, TAG_LEN};

/// Authenticated-decryption failure. Carries no detail on purpose:
/// distinguishing tag failures from format failures builds padding
/// oracles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

/// Derives the one-time Poly1305 key: ChaCha20 block 0.
fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::block(key, nonce, 0);
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

/// Computes the AEAD tag over `aad ‖ pad ‖ ciphertext ‖ pad ‖ lengths`.
fn compute_tag(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> [u8; TAG_LEN] {
    let otk = poly_key(key, nonce);
    let mut mac = Poly1305::new(&otk);
    mac.update(aad);
    mac.update(&[0u8; 16][..pad16(aad.len())]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..pad16(ciphertext.len())]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

fn pad16(len: usize) -> usize {
    (16 - len % 16) % 16
}

/// Encrypts `plaintext` with associated data `aad`; returns
/// `ciphertext ‖ tag`.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    seal_into(key, nonce, aad, plaintext, &mut out);
    out
}

/// [`seal`] into a caller-owned buffer: `out` is cleared and refilled
/// with `ciphertext ‖ tag`.
///
/// Once `out`'s capacity has grown past `plaintext.len() + TAG_LEN` it
/// is never reallocated, so a scratch buffer reused across messages
/// makes sealing allocation-free in steady state — the property the
/// secure message plane's hot path is built on.
pub fn seal_into(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    plaintext: &[u8],
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(plaintext);
    chacha20::xor_stream(key, nonce, 1, out);
    let tag = compute_tag(key, nonce, aad, out);
    out.extend_from_slice(&tag);
}

/// Decrypts `ciphertext ‖ tag` produced by [`seal`], verifying `aad`.
///
/// The tag is checked in constant time **before** any decryption
/// output is produced.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    let mut out = Vec::new();
    open_into(key, nonce, aad, sealed, &mut out)?;
    Ok(out)
}

/// [`open`] into a caller-owned buffer: on success `out` is cleared
/// and refilled with the plaintext; on authentication failure `out` is
/// left cleared and nothing is decrypted.
///
/// Like [`seal_into`], a reused scratch buffer makes receiving
/// allocation-free once warm.
pub fn open_into(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), AeadError> {
    out.clear();
    if sealed.len() < TAG_LEN {
        return Err(AeadError);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expected = compute_tag(key, nonce, aad, ciphertext);
    if !crate::ct_eq(&expected, tag) {
        return Err(AeadError);
    }
    out.extend_from_slice(ciphertext);
    chacha20::xor_stream(key, nonce, 1, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.8.2 test vector.
    #[test]
    fn rfc8439_seal_vector() {
        let key: [u8; 32] =
            unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = unhex("070000004041424344454647").try_into().unwrap();
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, &aad, plaintext);
        let expected_ct = unhex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        let expected_tag = unhex("1ae10b594f09e26a7e902ecbd0600691");
        assert_eq!(&sealed[..sealed.len() - 16], expected_ct.as_slice());
        assert_eq!(&sealed[sealed.len() - 16..], expected_tag.as_slice());

        let opened = open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for len in [0, 1, 15, 16, 17, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let sealed = seal(&key, &nonce, b"aad", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(
                open(&key, &nonce, b"aad", &sealed).unwrap(),
                pt,
                "len={len}"
            );
        }
    }

    #[test]
    fn tampering_rejected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"header", b"secret payload");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                open(&key, &nonce, b"header", &bad),
                Err(AeadError),
                "byte {i}"
            );
        }
    }

    #[test]
    fn wrong_aad_nonce_key_rejected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"aad", b"msg");
        assert!(open(&key, &nonce, b"AAD", &sealed).is_err());
        assert!(open(&key, &[3u8; 12], b"aad", &sealed).is_err());
        assert!(open(&[9u8; 32], &nonce, b"aad", &sealed).is_err());
        assert!(open(&key, &nonce, b"aad", &sealed).is_ok());
    }

    #[test]
    fn too_short_input_rejected() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        assert_eq!(open(&key, &nonce, b"", &[]), Err(AeadError));
        assert_eq!(open(&key, &nonce, b"", &[0u8; 15]), Err(AeadError));
    }

    #[test]
    fn into_variants_match_and_reuse_capacity() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        for len in [0usize, 1, 64, 100, 7] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 17) as u8).collect();
            seal_into(&key, &nonce, b"aad", &pt, &mut sealed);
            assert_eq!(sealed, seal(&key, &nonce, b"aad", &pt));
            open_into(&key, &nonce, b"aad", &sealed, &mut opened).unwrap();
            assert_eq!(opened, pt);
        }
        // Tamper: the out buffer must stay empty on failure.
        let pt = b"payload";
        seal_into(&key, &nonce, b"aad", pt, &mut sealed);
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(
            open_into(&key, &nonce, b"aad", &sealed, &mut opened),
            Err(AeadError)
        );
        assert!(opened.is_empty());
    }

    #[test]
    fn empty_plaintext_with_aad_authentication() {
        let key = [7u8; 32];
        let nonce = [8u8; 12];
        let sealed = seal(&key, &nonce, b"only-aad", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, b"only-aad", &sealed).unwrap(), b"");
        assert!(open(&key, &nonce, b"other-aad", &sealed).is_err());
    }
}
