//! HKDF-SHA256 (RFC 5869).
//!
//! Sealed postbox messages derive their AEAD key from the X25519
//! shared secret through HKDF, binding the sender's ephemeral key and
//! the recipient identity into the key schedule.

use crate::hmac::hmac_sha256;

/// `HKDF-Extract(salt, ikm)` → pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// `HKDF-Expand(prk, info, out.len())`.
///
/// # Panics
/// Panics when more than `255 × 32` bytes are requested (RFC limit).
pub fn expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut filled = 0;
    while filled < out.len() {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - filled).min(32);
        out[filled..filled + take].copy_from_slice(&block[..take]);
        filled += take;
        t = block.to_vec();
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
}

/// One-shot extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Appendix A test vectors.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_2_long_inputs() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let mut okm = [0u8; 82];
        derive(&salt, &ikm, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let prk = extract(b"salt", b"shared secret");
        let mut k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        expand(&prk, b"citymesh key", &mut k1);
        expand(&prk, b"citymesh nonce", &mut k2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn multi_block_expand_is_contiguous() {
        // A 100-byte expansion must have its 32-byte prefix equal to a
        // 32-byte expansion with the same inputs.
        let prk = extract(b"s", b"ikm");
        let mut long = [0u8; 100];
        let mut short = [0u8; 32];
        expand(&prk, b"info", &mut long);
        expand(&prk, b"info", &mut short);
        assert_eq!(&long[..32], &short);
    }
}
