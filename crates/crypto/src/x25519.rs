//! X25519 Diffie–Hellman (RFC 7748).
//!
//! Field arithmetic over GF(2²⁵⁵ − 19) with five 51-bit limbs and
//! `u128` intermediate products; scalar multiplication by the
//! Montgomery ladder with constant-time conditional swaps (no
//! secret-dependent branches or indexing).

/// Length of scalars, coordinates, and shared secrets, bytes.
pub const KEY_LEN: usize = 32;

/// The base point's u-coordinate (9).
pub const BASEPOINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

const MASK51: u64 = (1 << 51) - 1;

/// A field element in GF(2²⁵⁵ − 19), five radix-2⁵¹ limbs.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Parses 32 little-endian bytes, masking the top bit (RFC 7748
    /// §5: the u-coordinate's bit 255 is ignored).
    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Serializes to 32 little-endian bytes in canonical (fully
    /// reduced) form.
    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.weak_reduced().0;
        // Compute the quotient of (h + 19) / 2^255 to decide whether
        // h ≥ p, then add 19·q and mask — the standard branch-free
        // canonicalization.
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        h[0] += 19 * q;
        let mut carry;
        carry = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += carry;
        carry = h[1] >> 51;
        h[1] &= MASK51;
        h[2] += carry;
        carry = h[2] >> 51;
        h[2] &= MASK51;
        h[3] += carry;
        carry = h[3] >> 51;
        h[3] &= MASK51;
        h[4] += carry;
        h[4] &= MASK51;

        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0;
        for (i, limb) in h.iter().enumerate() {
            acc |= (*limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
            let _ = i;
        }
        while idx < 32 {
            out[idx] = acc as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    /// Carry-propagates so every limb is below 2⁵¹ + ε.
    fn weak_reduced(self) -> Fe {
        let mut h = self.0;
        let mut carry;
        carry = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += carry;
        carry = h[1] >> 51;
        h[1] &= MASK51;
        h[2] += carry;
        carry = h[2] >> 51;
        h[2] &= MASK51;
        h[3] += carry;
        carry = h[3] >> 51;
        h[3] &= MASK51;
        h[4] += carry;
        carry = h[4] >> 51;
        h[4] &= MASK51;
        h[0] += 19 * carry;
        carry = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += carry;
        Fe(h)
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut h = self.0;
        for (limb, r) in h.iter_mut().zip(rhs.0) {
            *limb += r;
        }
        Fe(h).weak_reduced()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p so every limb difference stays non-negative
        // (operands are weakly reduced, limbs < 2^52).
        const TWO_P: [u64; 5] = [
            0xF_FFFF_FFFF_FFDA,
            0xF_FFFF_FFFF_FFFE,
            0xF_FFFF_FFFF_FFFE,
            0xF_FFFF_FFFF_FFFE,
            0xF_FFFF_FFFF_FFFE,
        ];
        let mut h = [0u64; 5];
        for i in 0..5 {
            h[i] = self.0[i] + TWO_P[i] - rhs.0[i];
        }
        Fe(h).weak_reduced()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0.map(|x| x as u128);
        let b = rhs.0.map(|x| x as u128);

        let t0 = a[0] * b[0] + 19 * (a[1] * b[4] + a[2] * b[3] + a[3] * b[2] + a[4] * b[1]);
        let t1 = a[0] * b[1] + a[1] * b[0] + 19 * (a[2] * b[4] + a[3] * b[3] + a[4] * b[2]);
        let t2 = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + 19 * (a[3] * b[4] + a[4] * b[3]);
        let t3 = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + 19 * (a[4] * b[4]);
        let t4 = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];

        Self::carry(t0, t1, t2, t3, t4)
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    /// Multiplication by the curve constant (A − 2) / 4 = 121665.
    fn mul_small_121665(self) -> Fe {
        let a = self.0.map(|x| x as u128);
        Self::carry(
            a[0] * 121665,
            a[1] * 121665,
            a[2] * 121665,
            a[3] * 121665,
            a[4] * 121665,
        )
    }

    fn carry(t0: u128, t1: u128, t2: u128, t3: u128, t4: u128) -> Fe {
        let m = MASK51 as u128;
        let mut r = [0u64; 5];
        let mut c;
        c = t0 >> 51;
        r[0] = (t0 & m) as u64;
        let t1 = t1 + c;
        c = t1 >> 51;
        r[1] = (t1 & m) as u64;
        let t2 = t2 + c;
        c = t2 >> 51;
        r[2] = (t2 & m) as u64;
        let t3 = t3 + c;
        c = t3 >> 51;
        r[3] = (t3 & m) as u64;
        let t4 = t4 + c;
        c = t4 >> 51;
        r[4] = (t4 & m) as u64;
        r[0] += 19 * c as u64;
        let c2 = r[0] >> 51;
        r[0] &= MASK51;
        r[1] += c2;
        Fe(r)
    }

    /// Inversion via Fermat: self^(p − 2), square-and-multiply over
    /// the fixed public exponent.
    fn invert(self) -> Fe {
        // p − 2 = 2^255 − 21, little-endian bytes.
        let mut exp = [0xFFu8; 32];
        exp[0] = 0xEB;
        exp[31] = 0x7F;

        let mut result = Fe::ONE;
        // MSB-first over 255 meaningful bits.
        for bit in (0..255).rev() {
            result = result.square();
            if (exp[bit / 8] >> (bit % 8)) & 1 == 1 {
                result = result.mul(self);
            }
        }
        result
    }

    /// Constant-time conditional swap of `a` and `b` when `bit == 1`.
    fn cswap(bit: u64, a: &mut Fe, b: &mut Fe) {
        debug_assert!(bit <= 1);
        let mask = 0u64.wrapping_sub(bit);
        for (la, lb) in a.0.iter_mut().zip(b.0.iter_mut()) {
            let x = mask & (*la ^ *lb);
            *la ^= x;
            *lb ^= x;
        }
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(mut scalar: [u8; KEY_LEN]) -> [u8; KEY_LEN] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// X25519 scalar multiplication: `scalar · point`, both as 32-byte
/// strings per RFC 7748. The scalar is clamped internally.
pub fn x25519(scalar: &[u8; KEY_LEN], point: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let k = clamp_scalar(*scalar);
    let x1 = Fe::from_bytes(point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small_121665()));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

/// Derives the public key for `scalar`: `scalar · basepoint`.
pub fn public_key(scalar: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    x25519(scalar, &BASEPOINT)
}

/// Computes the shared secret between `our_scalar` and `their_public`.
///
/// Returns `None` when the result is the all-zero point (inputs in the
/// small-order subgroup) — RFC 7748 §6.1 requires rejecting it.
pub fn shared_secret(
    our_scalar: &[u8; KEY_LEN],
    their_public: &[u8; KEY_LEN],
) -> Option<[u8; KEY_LEN]> {
    let out = x25519(our_scalar, their_public);
    if crate::ct_eq(&out, &[0u8; KEY_LEN]) {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    #[test]
    fn field_round_trip() {
        let x = unhex("0900000000000000000000000000000000000000000000000000000000000000");
        assert_eq!(Fe::from_bytes(&x).to_bytes(), x);
        // A value just under p must round-trip canonically.
        let near_p = unhex("ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
        assert_eq!(Fe::from_bytes(&near_p).to_bytes(), near_p);
        // p itself reduces to zero.
        let p = unhex("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
        assert_eq!(Fe::from_bytes(&p).to_bytes(), [0u8; 32]);
    }

    #[test]
    fn field_algebra() {
        let a = Fe::from_bytes(&unhex(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449a44",
        ));
        let b = Fe::from_bytes(&unhex(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        ));
        // (a + b) - b == a
        assert_eq!(a.add(b).sub(b).to_bytes(), a.to_bytes());
        // a * 1 == a
        assert_eq!(a.mul(Fe::ONE).to_bytes(), a.to_bytes());
        // a * a⁻¹ == 1
        assert_eq!(a.mul(a.invert()).to_bytes(), Fe::ONE.to_bytes());
        // square == mul self
        assert_eq!(a.square().to_bytes(), a.mul(a).to_bytes());
        // distributivity: a(b + 1) = ab + a
        assert_eq!(a.mul(b.add(Fe::ONE)).to_bytes(), a.mul(b).add(a).to_bytes());
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let expected = unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
        assert_eq!(x25519(&scalar, &point), expected);
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let expected = unhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
        assert_eq!(x25519(&scalar, &point), expected);
    }

    #[test]
    fn rfc7748_iterated_once() {
        // §5.2: one iteration of k := X25519(k, u) starting from the
        // base point.
        let k = BASEPOINT;
        let u = BASEPOINT;
        let expected = unhex("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
        assert_eq!(x25519(&k, &u), expected);
    }

    #[test]
    fn rfc7748_diffie_hellman() {
        // §6.1.
        let alice_priv = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            alice_pub,
            unhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            bob_pub,
            unhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let shared_a = shared_secret(&alice_priv, &bob_pub).unwrap();
        let shared_b = shared_secret(&bob_priv, &alice_pub).unwrap();
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            shared_a,
            unhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")
        );
    }

    #[test]
    fn small_order_point_rejected() {
        let scalar = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let zero_point = [0u8; 32];
        assert!(shared_secret(&scalar, &zero_point).is_none());
    }

    #[test]
    fn clamping_is_applied() {
        // Clamped and unclamped versions of the same scalar agree.
        let raw = unhex("0101010101010101010101010101010101010101010101010101010101010101");
        let clamped = clamp_scalar(raw);
        assert_eq!(x25519(&raw, &BASEPOINT), x25519(&clamped, &BASEPOINT));
        assert_eq!(clamped[0] & 7, 0);
        assert_eq!(clamped[31] & 0x80, 0);
        assert_eq!(clamped[31] & 0x40, 0x40);
    }

    #[test]
    fn dh_agreement_random_keys() {
        // Deterministic "random" keys.
        for seed in 0u8..4 {
            let a = [seed.wrapping_mul(17).wrapping_add(3); 32];
            let b = [seed.wrapping_mul(29).wrapping_add(7); 32];
            let pa = public_key(&a);
            let pb = public_key(&b);
            assert_eq!(
                shared_secret(&a, &pb).unwrap(),
                shared_secret(&b, &pa).unwrap(),
                "seed {seed}"
            );
        }
    }
}
