//! Cryptographic primitives for CityMesh's self-certifying naming and
//! postbox message security.
//!
//! The DFN agenda (paper §1, "Security") calls for *self-certifying
//! names* — each identifier is the hash of the entity's public key,
//! exchanged out-of-band — so that message authenticity and
//! confidentiality never require reaching a certificate authority
//! during an outage. This crate supplies the minimal primitive suite
//! for that design:
//!
//! * [`sha256()`] / [`sha512()`] — FIPS 180-4 hashes (NIST test vectors).
//! * [`hmac`] / [`hkdf`] — RFC 2104 / RFC 5869 keyed MAC and KDF.
//! * [`chacha20`] + [`poly1305`] + [`aead`] — the RFC 8439 AEAD.
//! * [`x25519`] — RFC 7748 Diffie–Hellman over Curve25519.
//! * [`identity`] — [`identity::NodeId`] (`SHA-256(public key)`),
//!   keypairs, and [`identity::SealedMessage`]: sender-ephemeral
//!   ECDH → HKDF → AEAD, the construction postboxes use to cache
//!   messages they cannot read (§3 step 4).
//! * [`session`] — [`session::SessionKey`]: static-static ECDH → HKDF
//!   derived once per node pair and reused for every message between
//!   them, the amortized construction the secure message plane's hot
//!   path caches like routes.
//!
//! ## Scope
//!
//! Everything here is implemented from scratch because no crypto
//! crates are in this workspace's approved offline dependency set
//! (DESIGN.md §1). The implementations pass the relevant RFC/NIST
//! vectors and are constant-time where the algorithm is naturally so
//! (X25519 Montgomery ladder with conditional swaps, no secret-indexed
//! table lookups anywhere), but they have not been audited; the point
//! of this crate is to exercise the *protocol* code paths of the
//! paper faithfully, not to ship a production TLS stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod hkdf;
pub mod hmac;
pub mod identity;
pub mod poly1305;
pub mod session;
pub mod sha256;
pub mod sha512;
pub mod x25519;

pub use aead::{open, open_into, seal, seal_into, AeadError};
pub use identity::{Keypair, NodeId, PostboxAddress, SealedMessage};
pub use session::{SessionKey, HEADER_TAG_LEN};
pub use sha256::sha256;
pub use sha512::sha512;

/// Constant-time byte-slice equality (no early exit on mismatch).
///
/// Slices of different lengths compare unequal, and the length check
/// is allowed to be variable-time (lengths are public).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
