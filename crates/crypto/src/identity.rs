//! Self-certifying identities and sealed postbox messages.
//!
//! The DFN security design (paper §1) derives every identifier by
//! hashing the entity's public key, exchanged out-of-band (e.g. as a
//! QR code, §3 step 1). Possession of the ID is then sufficient to
//! verify key ownership with no certificate authority in the loop.
//!
//! [`SealedMessage`] is the construction postboxes store-and-forward
//! without being able to read (§3 step 4): sender-ephemeral X25519 →
//! HKDF-SHA256 → ChaCha20-Poly1305, with the route destination bound
//! in as associated data so a message cannot be silently replayed
//! toward a different postbox.

use crate::hkdf;
use crate::sha256::sha256;
use crate::x25519;
use crate::{aead, AeadError};

/// A self-certifying node identifier: `SHA-256(public key)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub [u8; 32]);

impl NodeId {
    /// Derives the ID for `public_key`.
    pub fn from_public_key(public_key: &[u8; 32]) -> Self {
        NodeId(sha256(public_key))
    }

    /// Verifies that `public_key` hashes to this ID (constant time).
    pub fn certifies(&self, public_key: &[u8; 32]) -> bool {
        crate::ct_eq(&self.0, &sha256(public_key))
    }

    /// Short human-readable prefix, e.g. for logs.
    pub fn short(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeId({}…)", self.short())
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// An X25519 keypair.
#[derive(Clone)]
pub struct Keypair {
    secret: [u8; 32],
    /// The public key, safe to share.
    pub public: [u8; 32],
}

impl Keypair {
    /// Builds a keypair from 32 bytes of caller-supplied entropy.
    ///
    /// This crate deliberately has no RNG dependency; simulations pass
    /// seeded bytes so experiments stay reproducible, and a deployment
    /// would pass OS entropy.
    pub fn from_entropy(entropy: [u8; 32]) -> Self {
        let secret = x25519::clamp_scalar(entropy);
        let public = x25519::public_key(&secret);
        Keypair { secret, public }
    }

    /// The self-certifying ID of this keypair.
    pub fn node_id(&self) -> NodeId {
        NodeId::from_public_key(&self.public)
    }

    /// Computes the X25519 shared secret with `their_public`;
    /// `None` for degenerate (small-order) peer keys.
    pub fn diffie_hellman(&self, their_public: &[u8; 32]) -> Option<[u8; 32]> {
        x25519::shared_secret(&self.secret, their_public)
    }
}

impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "Keypair({})", self.node_id().short())
    }
}

/// Bob's out-of-band postbox information (paper §3 step 1): his public
/// key plus the building that hosts his postbox AP. Small enough for a
/// QR code (68 bytes serialized).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostboxAddress {
    /// Recipient's long-term public key.
    pub public_key: [u8; 32],
    /// Building ID of the postbox AP's building.
    pub building_id: u32,
}

impl PostboxAddress {
    /// The recipient's self-certifying ID.
    pub fn node_id(&self) -> NodeId {
        NodeId::from_public_key(&self.public_key)
    }

    /// Serializes to `public_key ‖ building_id_le`.
    pub fn to_bytes(&self) -> [u8; 36] {
        let mut out = [0u8; 36];
        out[..32].copy_from_slice(&self.public_key);
        out[32..].copy_from_slice(&self.building_id.to_le_bytes());
        out
    }

    /// Parses the serialization from [`PostboxAddress::to_bytes`].
    pub fn from_bytes(bytes: &[u8; 36]) -> Self {
        PostboxAddress {
            public_key: bytes[..32].try_into().expect("32 bytes"),
            building_id: u32::from_le_bytes(bytes[32..].try_into().expect("4 bytes")),
        }
    }
}

/// HKDF info label binding the protocol version into key derivation.
const SEAL_INFO: &[u8] = b"citymesh-v1 sealed message";

/// An encrypted, integrity-protected message addressed to a recipient
/// public key. Only the recipient's secret key opens it; relaying APs
/// and the postbox see ciphertext.
///
/// ```
/// use citymesh_crypto::{Keypair, PostboxAddress, SealedMessage};
///
/// let bob = Keypair::from_entropy([0xB0; 32]); // use OS entropy in production
/// let address = PostboxAddress { public_key: bob.public, building_id: 42 };
///
/// let sealed = SealedMessage::seal(&address, [0x11; 32], b"msg#1", b"hi bob").unwrap();
/// assert_eq!(sealed.open(&bob, b"msg#1").unwrap(), b"hi bob");
/// // Wrong associated data (replay under another identity) fails.
/// assert!(sealed.open(&bob, b"msg#2").is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedMessage {
    /// Sender's ephemeral public key (fresh per message).
    pub ephemeral_public: [u8; 32],
    /// `ciphertext ‖ tag`.
    pub ciphertext: Vec<u8>,
}

impl SealedMessage {
    /// Seals `plaintext` to `recipient`, binding `aad` (typically the
    /// destination building ID and message ID from the packet header).
    ///
    /// `ephemeral_entropy` must be fresh random bytes per message —
    /// reuse would link messages but not break confidentiality, since
    /// the derived key also depends on the recipient.
    ///
    /// Returns `None` only when `recipient`'s key is degenerate.
    pub fn seal(
        recipient: &PostboxAddress,
        ephemeral_entropy: [u8; 32],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Option<Self> {
        let eph = Keypair::from_entropy(ephemeral_entropy);
        let shared = eph.diffie_hellman(&recipient.public_key)?;
        let (key, nonce) = derive_key_nonce(&shared, &eph.public, &recipient.public_key);
        let ciphertext = aead::seal(&key, &nonce, aad, plaintext);
        Some(SealedMessage {
            ephemeral_public: eph.public,
            ciphertext,
        })
    }

    /// Opens with the recipient's keypair. Fails on any tampering with
    /// the ciphertext, the ephemeral key, or the associated data.
    pub fn open(&self, recipient: &Keypair, aad: &[u8]) -> Result<Vec<u8>, AeadError> {
        let shared = recipient
            .diffie_hellman(&self.ephemeral_public)
            .ok_or(AeadError)?;
        let (key, nonce) = derive_key_nonce(&shared, &self.ephemeral_public, &recipient.public);
        aead::open(&key, &nonce, aad, &self.ciphertext)
    }

    /// Serializes to `ephemeral_public ‖ ciphertext`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.ciphertext.len());
        out.extend_from_slice(&self.ephemeral_public);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses the serialization from [`SealedMessage::to_bytes`].
    /// `None` when too short to contain key + tag.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 32 + 16 {
            return None;
        }
        Some(SealedMessage {
            ephemeral_public: bytes[..32].try_into().expect("32 bytes"),
            ciphertext: bytes[32..].to_vec(),
        })
    }

    /// Wire size in bytes.
    pub fn len(&self) -> usize {
        32 + self.ciphertext.len()
    }

    /// Always false (a sealed message carries at least a tag).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Key schedule: `HKDF(salt = eph_pub ‖ recipient_pub, ikm = shared)`
/// expanded to an AEAD key and nonce. The nonce need not be unique
/// beyond the key (the key is already unique per ephemeral), but
/// deriving it costs nothing and removes a whole failure class.
fn derive_key_nonce(
    shared: &[u8; 32],
    eph_pub: &[u8; 32],
    recipient_pub: &[u8; 32],
) -> ([u8; 32], [u8; 12]) {
    let mut salt = [0u8; 64];
    salt[..32].copy_from_slice(eph_pub);
    salt[32..].copy_from_slice(recipient_pub);
    let mut okm = [0u8; 44];
    hkdf::derive(&salt, shared, SEAL_INFO, &mut okm);
    let key: [u8; 32] = okm[..32].try_into().expect("32 bytes");
    let nonce: [u8; 12] = okm[32..].try_into().expect("12 bytes");
    (key, nonce)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bob() -> Keypair {
        Keypair::from_entropy([0xB0; 32])
    }

    fn bob_address() -> PostboxAddress {
        PostboxAddress {
            public_key: bob().public,
            building_id: 1234,
        }
    }

    #[test]
    fn node_id_certifies_its_key() {
        let kp = bob();
        let id = kp.node_id();
        assert!(id.certifies(&kp.public));
        let other = Keypair::from_entropy([0xA1; 32]);
        assert!(!id.certifies(&other.public));
        assert_eq!(id, NodeId::from_public_key(&kp.public));
    }

    #[test]
    fn node_id_display_and_short() {
        let id = bob().node_id();
        let full = id.to_string();
        assert_eq!(full.len(), 64);
        assert!(full.starts_with(&id.short()));
    }

    #[test]
    fn keypair_debug_hides_secret() {
        let kp = bob();
        let dbg = format!("{kp:?}");
        assert!(!dbg.contains("secret"));
        assert!(dbg.contains(&kp.node_id().short()));
    }

    #[test]
    fn postbox_address_round_trip() {
        let addr = bob_address();
        let back = PostboxAddress::from_bytes(&addr.to_bytes());
        assert_eq!(back, addr);
        assert_eq!(back.node_id(), bob().node_id());
    }

    #[test]
    fn seal_open_round_trip() {
        let addr = bob_address();
        let sealed =
            SealedMessage::seal(&addr, [0x11; 32], b"building:1234", b"hi bob, it's alice")
                .unwrap();
        let opened = sealed.open(&bob(), b"building:1234").unwrap();
        assert_eq!(opened, b"hi bob, it's alice");
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let addr = bob_address();
        let sealed = SealedMessage::seal(&addr, [0x12; 32], b"", b"secret").unwrap();
        let eve = Keypair::from_entropy([0xEE; 32]);
        assert!(sealed.open(&eve, b"").is_err());
    }

    #[test]
    fn aad_mismatch_rejected() {
        let addr = bob_address();
        let sealed = SealedMessage::seal(&addr, [0x13; 32], b"dest:1234", b"payload").unwrap();
        assert!(sealed.open(&bob(), b"dest:9999").is_err());
        assert!(sealed.open(&bob(), b"dest:1234").is_ok());
    }

    #[test]
    fn tampering_anywhere_rejected() {
        let addr = bob_address();
        let sealed = SealedMessage::seal(&addr, [0x14; 32], b"a", b"msg").unwrap();
        let bytes = sealed.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            let parsed = SealedMessage::from_bytes(&bad).unwrap();
            assert!(parsed.open(&bob(), b"a").is_err(), "byte {i}");
        }
    }

    #[test]
    fn serialization_round_trip() {
        let addr = bob_address();
        let sealed = SealedMessage::seal(&addr, [0x15; 32], b"", b"0123456789").unwrap();
        let back = SealedMessage::from_bytes(&sealed.to_bytes()).unwrap();
        assert_eq!(back, sealed);
        assert_eq!(sealed.len(), sealed.to_bytes().len());
        // Too-short inputs rejected.
        assert!(SealedMessage::from_bytes(&[0u8; 47]).is_none());
    }

    #[test]
    fn distinct_ephemerals_give_distinct_ciphertexts() {
        let addr = bob_address();
        let s1 = SealedMessage::seal(&addr, [0x21; 32], b"", b"same plaintext").unwrap();
        let s2 = SealedMessage::seal(&addr, [0x22; 32], b"", b"same plaintext").unwrap();
        assert_ne!(s1.ephemeral_public, s2.ephemeral_public);
        assert_ne!(s1.ciphertext, s2.ciphertext);
        // Both still open correctly.
        assert_eq!(s1.open(&bob(), b"").unwrap(), b"same plaintext");
        assert_eq!(s2.open(&bob(), b"").unwrap(), b"same plaintext");
    }

    #[test]
    fn empty_plaintext_allowed() {
        let addr = bob_address();
        let sealed = SealedMessage::seal(&addr, [0x31; 32], b"ping", b"").unwrap();
        assert_eq!(sealed.open(&bob(), b"ping").unwrap(), b"");
    }
}
