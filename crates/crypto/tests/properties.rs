//! Property-based tests for the crypto crate.

use citymesh_crypto::{
    aead, chacha20, ct_eq, hkdf, hmac::hmac_sha256, poly1305::poly1305, sha256, sha512, Keypair,
    PostboxAddress, SealedMessage,
};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048), chunk in 1usize..97) {
        let mut h = citymesh_crypto::sha256::Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha512_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048), chunk in 1usize..97) {
        let mut h = citymesh_crypto::sha512::Sha512::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize(), sha512(&data));
    }

    /// HMAC differs when either key or message differ (no trivial
    /// collisions in the tested space).
    #[test]
    fn hmac_separates_keys(key1 in proptest::collection::vec(any::<u8>(), 0..64),
                           key2 in proptest::collection::vec(any::<u8>(), 0..64),
                           msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let t1 = hmac_sha256(&key1, &msg);
        let t2 = hmac_sha256(&key2, &msg);
        if key1 == key2 {
            prop_assert_eq!(t1, t2);
        } else {
            prop_assert_ne!(t1, t2);
        }
    }

    /// HKDF expansions of different lengths agree on the common prefix.
    #[test]
    fn hkdf_prefix_consistency(ikm in proptest::collection::vec(any::<u8>(), 1..64),
                               len1 in 1usize..64, len2 in 1usize..64) {
        let prk = hkdf::extract(b"salt", &ikm);
        let mut a = vec![0u8; len1];
        let mut b = vec![0u8; len2];
        hkdf::expand(&prk, b"info", &mut a);
        hkdf::expand(&prk, b"info", &mut b);
        let common = len1.min(len2);
        prop_assert_eq!(&a[..common], &b[..common]);
    }

    /// ChaCha20 is an involution and position-independent: the stream
    /// starting at block k equals the tail of the stream from block 0.
    #[test]
    fn chacha_stream_consistency(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                 len in 1usize..512) {
        let mut full = vec![0u8; 64 + len];
        chacha20::xor_stream(&key, &nonce, 0, &mut full);
        let mut tail = vec![0u8; len];
        chacha20::xor_stream(&key, &nonce, 1, &mut tail);
        prop_assert_eq!(&full[64..], tail.as_slice());
    }

    /// Poly1305 tag changes under any single-byte perturbation.
    #[test]
    fn poly1305_sensitivity(key in any::<[u8; 32]>(),
                            msg in proptest::collection::vec(any::<u8>(), 1..128),
                            pos_hint in any::<usize>(), bit in 0u8..8) {
        let t1 = poly1305(&key, &msg);
        let mut other = msg.clone();
        other[pos_hint % msg.len()] ^= 1 << bit;
        let t2 = poly1305(&key, &other);
        prop_assert_ne!(t1, t2);
    }

    /// AEAD round trip with arbitrary key/nonce/aad/plaintext.
    #[test]
    fn aead_round_trip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                       aad in proptest::collection::vec(any::<u8>(), 0..64),
                       pt in proptest::collection::vec(any::<u8>(), 0..512)) {
        let sealed = aead::seal(&key, &nonce, &aad, &pt);
        prop_assert_eq!(aead::open(&key, &nonce, &aad, &sealed).unwrap(), pt);
    }

    /// AEAD rejects any single corrupted byte.
    #[test]
    fn aead_rejects_corruption(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                               pt in proptest::collection::vec(any::<u8>(), 0..128),
                               pos_hint in any::<usize>(), bit in 0u8..8) {
        let mut sealed = aead::seal(&key, &nonce, b"aad", &pt);
        let pos = pos_hint % sealed.len();
        sealed[pos] ^= 1 << bit;
        prop_assert!(aead::open(&key, &nonce, b"aad", &sealed).is_err());
    }

    /// X25519 Diffie–Hellman commutes for arbitrary entropy.
    #[test]
    fn dh_commutes(e1 in any::<[u8; 32]>(), e2 in any::<[u8; 32]>()) {
        let a = Keypair::from_entropy(e1);
        let b = Keypair::from_entropy(e2);
        let s1 = a.diffie_hellman(&b.public);
        let s2 = b.diffie_hellman(&a.public);
        prop_assert_eq!(s1, s2);
    }

    /// Sealed messages round-trip for arbitrary recipients, entropy,
    /// aad, and plaintext — and the wire form round-trips too.
    #[test]
    fn sealed_message_round_trip(recipient_entropy in any::<[u8; 32]>(),
                                 eph in any::<[u8; 32]>(),
                                 aad in proptest::collection::vec(any::<u8>(), 0..32),
                                 pt in proptest::collection::vec(any::<u8>(), 0..256),
                                 building in any::<u32>()) {
        let recipient = Keypair::from_entropy(recipient_entropy);
        let addr = PostboxAddress { public_key: recipient.public, building_id: building };
        let sealed = SealedMessage::seal(&addr, eph, &aad, &pt).unwrap();
        let wire = sealed.to_bytes();
        let parsed = SealedMessage::from_bytes(&wire).unwrap();
        prop_assert_eq!(parsed.open(&recipient, &aad).unwrap(), pt);
    }

    /// ct_eq agrees with ==.
    #[test]
    fn ct_eq_matches_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                        b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }
}
