//! Offline stand-in for the slice of `criterion` the CityMesh benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `bench_function`, `sample_size`, `throughput`, and `Bencher::iter`
//! / `iter_batched`.
//!
//! The build environment has no crates.io access (DESIGN.md §5), so
//! the workspace vendors a simple wall-clock harness: each bench is
//! warmed up, then timed over adaptively sized batches until enough
//! samples accumulate, and the per-iteration mean / best are printed
//! as `group/name ... <time>/iter`. There is no statistical analysis,
//! HTML report, or regression baseline — the numbers are honest but
//! coarse, meant for relative comparisons within one run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box for convenience.
pub use std::hint::black_box;

/// Target wall-clock spent measuring each bench function.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

/// How batched setup inputs are grouped; only affects amortization in
/// real criterion, accepted here for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation attached to a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The bench driver handed to registered bench functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            samples_wanted: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name), self.throughput);
        self
    }

    /// Ends the group (printing is per-bench; nothing is buffered).
    pub fn finish(self) {}
}

/// Times closures on behalf of one benchmark.
pub struct Bencher {
    samples_wanted: usize,
    /// Mean nanoseconds per iteration, one entry per sample batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, running it as many times as needed.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and size the batch so one batch is ~1/samples of the
        // measurement budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = TARGET_MEASURE_TIME / self.samples_wanted as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.samples_wanted {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples_wanted {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let best = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / mean * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / mean * 1e9 / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{label:<48} {:>12}/iter (best {}){rate}",
            fmt_ns(mean),
            fmt_ns(best)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a bench entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built from `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(64));
        group.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, a_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.0e9), "3.00 s");
    }
}
