//! The [`Strategy`] trait and the combinators CityMesh's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// How many resampling attempts `prop_filter` / `prop_filter_map`
/// make before giving up on a case.
const FILTER_MAX_TRIES: usize = 1000;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f`, resampling up to a
    /// bounded number of times.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Combined map + filter: keeps only `Some` results, resampling up
    /// to a bounded number of times.
    fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

/// Boxes a strategy for heterogeneous collections ([`Union`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_TRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_MAX_TRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// Uniform choice among boxed strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty option list.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy {:?}", self);
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy {:?}", self);
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "bad f64 range strategy {:?}",
            self
        );
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(7)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let v = (-5i64..5).sample(&mut r);
            assert!((-5..5).contains(&v));
            let v = (0u16..=3).sample(&mut r);
            assert!(v <= 3);
            let v = (-1.5..2.5f64).sample(&mut r);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoint() {
        let mut r = rng();
        let mut saw_end = false;
        for _ in 0..200 {
            if (0u8..=1).sample(&mut r) == 1 {
                saw_end = true;
            }
        }
        assert!(saw_end);
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut r = rng();
        for _ in 0..100 {
            assert!(s.sample(&mut r) < 19);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
