//! Offline stand-in for the slice of `proptest` that CityMesh's
//! property tests use.
//!
//! The build environment has no crates.io access (DESIGN.md §5), so
//! the workspace vendors a small property-testing core with the same
//! spelling as the real crate: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`,
//! range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], `Just`, `prop_oneof!`, the `proptest!` test
//! macro, and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   formatted by the assertion itself (the `prop_assert*` macros are
//!   plain `assert*` here), not a minimized counterexample.
//! * **Deterministic seeding.** Each test function derives its RNG
//!   seed from its own name, so failures reproduce exactly across
//!   runs — there is no persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs once per sampled case.
///
/// Accepts an optional leading `#![proptest_config(expr)]` controlling
/// the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ( $($pat,)+ ) = (
                        $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                    );
                    // Real proptest bodies may `return Ok(())` early, so
                    // the body runs in a Result-returning closure.
                    let __run = || -> ::std::result::Result<(), String> {
                        $body
                        Ok(())
                    };
                    if let Err(__msg) = __run() {
                        panic!("property failed: {}", __msg);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; no
/// shrinking in this offline stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among the listed strategies (all must yield the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and nested tuples parse.
        #[test]
        fn tuple_patterns_destructure((a, b) in (0u32..10, 10u32..20), extra in any::<bool>()) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            let _ = extra;
        }

        #[test]
        fn oneof_and_filters(kind in prop_oneof![Just(Kind::A), Just(Kind::B)],
                             v in crate::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(matches!(kind, Kind::A | Kind::B));
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn flat_map_links_sizes(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(any::<u8>(), n..n + 1))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn filter_map_applies_reason_on_exhaustion() {
        let s = (0u32..4).prop_filter_map("keep evens", |v| (v % 2 == 0).then_some(v));
        let mut rng = crate::test_runner::TestRng::from_name("fm");
        for _ in 0..64 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}
