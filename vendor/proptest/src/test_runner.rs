//! Test configuration and the deterministic RNG driving sampling.

/// Controls how many cases [`crate::proptest!`] runs per test.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the full workspace
        // suite fast while still exercising the invariants broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic SplitMix64 generator seeding all sampling.
///
/// Seeded from the test function's module path and name, so each test
/// sees a stable, independent stream across runs and reorderings.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Multiply-shift; the slight modulo bias is irrelevant for
        // test-case generation.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_give_distinct_streams() {
        let a = TestRng::from_name("alpha").next_u64();
        let b = TestRng::from_name("beta").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
