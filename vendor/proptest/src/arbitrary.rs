//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Rejection-free: fold into the valid scalar range below the
        // surrogate block, which is plenty for test inputs.
        char::from_u32((rng.next_u64() % 0xD800) as u32).expect("below surrogates")
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_fill_every_byte() {
        let mut rng = TestRng::new(3);
        let a: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        let b: [u8; 32] = Arbitrary::arbitrary(&mut rng);
        assert_ne!(a, b);
        assert!(a.iter().any(|&x| x != 0));
        let c: [u8; 12] = Arbitrary::arbitrary(&mut rng);
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::new(5);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn chars_are_valid() {
        let mut rng = TestRng::new(8);
        for _ in 0..100 {
            let c = any::<char>().sample(&mut rng);
            assert!((c as u32) < 0xD800);
        }
    }
}
