//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a collection size specification.
pub trait SizeRange {
    /// Inclusive lower and upper bound on the length.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range {self:?}");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range {self:?}");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a size range.
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

/// `Vec` strategy: each element sampled from `element`, length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len) as u64;
        let len = self.min_len
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_bounds() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn inclusive_and_exact_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert!(vec(any::<u8>(), 1..=3).sample(&mut rng).len() <= 3);
            assert_eq!(vec(any::<u8>(), 4usize).sample(&mut rng).len(), 4);
        }
    }

    #[test]
    fn nested_tuples_as_elements() {
        let s = vec((0u32..4, 0.0..1.0f64), 0..10);
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            for (a, b) in s.sample(&mut rng) {
                assert!(a < 4 && (0.0..1.0).contains(&b));
            }
        }
    }
}
