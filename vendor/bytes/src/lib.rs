//! Offline stand-in for the slice of the `bytes` crate the CityMesh
//! wire format uses: [`Bytes`], [`BytesMut`], and [`BufMut`].
//!
//! The build environment has no crates.io access (DESIGN.md §5), so
//! the workspace vendors a minimal implementation. Semantics match
//! `bytes 1.x` for the operations exercised here; cheap zero-copy
//! slicing is not reproduced — [`Bytes`] shares its backing store via
//! reference counting, which is all the packet codec needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::new(bytes.to_vec()),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growable buffer (the subset CityMesh uses).
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_bytes_mut() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"abc");
        b.put_u32(0x01020304);
        let frozen = b.freeze();
        assert_eq!(&*frozen, b"abc\x01\x02\x03\x04");
        assert_eq!(frozen.len(), 7);
    }

    #[test]
    fn bytes_equality_and_clone_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, *vec![1u8, 2, 3].as_slice());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn debug_escapes() {
        let s = format!("{:?}", Bytes::from_static(b"a\"\n"));
        assert_eq!(s, "b\"a\\\"\\n\"");
    }
}
