//! Offline stand-in for the slice of `crossbeam` CityMesh uses:
//! [`thread::scope`] for structured fork/join parallelism.
//!
//! The build environment has no crates.io access (DESIGN.md §5), so
//! the workspace vendors a shim over `std::thread::scope` (stable
//! since Rust 1.63) that reproduces crossbeam's calling convention —
//! the spawn closure receives the scope again so workers can spawn
//! siblings, and a worker panic surfaces as an `Err` from [`thread::scope`]
//! rather than unwinding through the caller.

#![warn(missing_docs)]

/// Scoped threads (crossbeam-style API over `std::thread::scope`).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope run: `Err` carries a worker panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// A scope in which child threads borrowing the stack may run.
    #[derive(Clone, Copy)]
    pub struct Scope<'sc, 'env: 'sc> {
        inner: &'sc std::thread::Scope<'sc, 'env>,
    }

    impl<'sc, 'env> Scope<'sc, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope so it can spawn further siblings, matching crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'sc, T>
        where
            F: FnOnce(&Scope<'sc, 'env>) -> T + Send + 'sc,
            T: Send + 'sc,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope handle; joins every spawned thread before
    /// returning. A panicking worker yields `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'sc> FnOnce(&Scope<'sc, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let mut slots = vec![0u64; 4];
        super::thread::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let result = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
