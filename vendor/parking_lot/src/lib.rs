//! Offline stand-in for the slice of `parking_lot` CityMesh uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning, `Result`-free guards.
//!
//! The build environment has no crates.io access (DESIGN.md §5), so
//! the workspace vendors wrappers over the `std::sync` primitives.
//! `parking_lot`'s defining feature kept here is the API (guards are
//! returned directly, not wrapped in `Result`); a poisoned std lock —
//! only possible after another thread panicked — recovers the inner
//! data, mirroring parking_lot's indifference to panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's `Result`-free API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with parking_lot's `Result`-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
