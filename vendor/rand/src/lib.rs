//! Offline stand-in for the tiny slice of the `rand` crate CityMesh
//! relies on: the [`RngCore`] / [`SeedableRng`] traits that
//! `citymesh_simcore::SimRng` implements.
//!
//! The build environment for this repository has no crates.io access,
//! so the workspace vendors the trait surface it needs (see DESIGN.md
//! §5). No generator lives here — all randomness in CityMesh comes
//! from the in-tree xoshiro256++ implementation — and the trait
//! signatures match `rand 0.8` so the real crate can be swapped back
//! in without touching call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Error type carried by [`RngCore::try_fill_bytes`].
///
/// Deterministic in-memory generators never fail, so this is an
/// opaque marker matching `rand::Error`'s role in signatures.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, per `rand 0.8`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// A generator constructible from a fixed seed, per `rand 0.8`.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for most generators).
    type Seed;

    /// Builds the generator from `seed`.
    fn from_seed(seed: Self::Seed) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn trait_surface_is_usable() {
        let mut rng = Counter::from_seed([0; 8]);
        assert_eq!(rng.next_u64(), 1);
        let mut buf = [0u8; 3];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [2, 3, 4]);
        assert!(format!("{}", Error).contains("generator"));
    }
}
